package sched

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"mqpi/internal/engine"
	"mqpi/internal/workload"
)

// The three-phase tick's contract: virtual-time outcomes are bit-identical
// at every worker count. These tests pin it differentially (lockstep
// snapshot comparison across worker counts under random workloads) and under
// the race detector (16+ runners stepped concurrently over one shared
// dataset with scans, index probes, and correlated sub-queries).

// workerCounts are the execute-phase widths every differential test compares:
// serial, minimal parallelism, and whatever the host offers.
func workerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// schedOp is one scripted mutation applied identically to every server of a
// differential trial, before the tick-th Tick.
type schedOp struct {
	tick int
	kind string // "block" | "unblock" | "abort" | "priority"
	id   int
	prio int
}

// buildTrial constructs a fresh db + server + workload for one (trial,
// workers) pair. All randomness is drawn from a seed that depends only on
// the trial, so every worker count sees an identical universe.
func buildTrial(t *testing.T, trial, workers int) (*Server, []*Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(1000 + trial)))
	db := engine.Open()
	quantum := []float64{0.25, 0.5, 1}[rng.Intn(3)]
	mpl := []int{0, 0, 2, 3}[rng.Intn(4)]
	srv := New(Config{
		RateC:   5 + float64(rng.Intn(20)),
		Quantum: quantum,
		MPL:     mpl,
		Weights: map[int]float64{0: 1, 1: 2, 2: 4},
		Workers: workers,
	})
	t.Cleanup(srv.Close)
	n := 4 + rng.Intn(8)
	queries := make([]*Query, n)
	for i := range queries {
		pages := 1 + rng.Intn(24)
		r := prepare(t, db, fmt.Sprintf("w%d_t%d_%d", workers, trial, i), pages)
		q := srv.NewQuery(fmt.Sprintf("q%d", i), "", rng.Intn(3), r)
		queries[i] = q
		if rng.Intn(4) == 0 {
			at := float64(1+rng.Intn(4)) * quantum
			if rng.Intn(2) == 0 {
				at += 0.5 * quantum
			}
			srv.ScheduleArrival(at, q)
		} else {
			srv.Submit(q)
		}
	}
	return srv, queries
}

// trialScript derives the mutation script for a trial from the same seed
// space, independent of any server state, so it applies identically at every
// worker count.
func trialScript(trial, nQueries, ticks int) []schedOp {
	rng := rand.New(rand.NewSource(int64(5000 + trial)))
	var ops []schedOp
	for k := 0; k < 6; k++ {
		id := 1 + rng.Intn(nQueries)
		op := schedOp{tick: rng.Intn(ticks), id: id}
		switch rng.Intn(4) {
		case 0:
			op.kind = "block"
		case 1:
			op.kind = "unblock"
		case 2:
			op.kind = "abort"
		default:
			op.kind = "priority"
			op.prio = rng.Intn(3)
		}
		ops = append(ops, op)
	}
	return ops
}

func applyOp(srv *Server, op schedOp) {
	// Errors (bad state for the transition) are part of the script: they
	// must occur identically at every worker count, so they are ignored, not
	// fatal.
	switch op.kind {
	case "block":
		_ = srv.Block(op.id)
	case "unblock":
		_ = srv.Unblock(op.id)
	case "abort":
		_ = srv.Abort(op.id)
	case "priority":
		_ = srv.SetPriority(op.id, op.prio)
	}
}

// bitsEqual compares floats for bit identity (NaN-safe, -0 vs +0 strict).
func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// diffSnapshots reports the first field-level divergence between two
// snapshots, or "" if they are bit-identical.
func diffSnapshots(a, b Snapshot) string {
	if !bitsEqual(a.Now, b.Now) {
		return fmt.Sprintf("Now %v vs %v", a.Now, b.Now)
	}
	lists := []struct {
		name string
		x, y []QueryInfo
	}{
		{"Running", a.Running, b.Running},
		{"Queued", a.Queued, b.Queued},
		{"Scheduled", a.Scheduled, b.Scheduled},
		{"Done", a.Done, b.Done},
	}
	for _, l := range lists {
		if len(l.x) != len(l.y) {
			return fmt.Sprintf("%s length %d vs %d", l.name, len(l.x), len(l.y))
		}
		for i := range l.x {
			p, q := l.x[i], l.y[i]
			switch {
			case p.ID != q.ID:
				return fmt.Sprintf("%s[%d].ID %d vs %d", l.name, i, p.ID, q.ID)
			case p.Status != q.Status:
				return fmt.Sprintf("%s[%d] (Q%d) status %v vs %v", l.name, i, p.ID, p.Status, q.Status)
			case !bitsEqual(p.SubmitTime, q.SubmitTime):
				return fmt.Sprintf("%s[%d] (Q%d) SubmitTime %v vs %v", l.name, i, p.ID, p.SubmitTime, q.SubmitTime)
			case !bitsEqual(p.StartTime, q.StartTime):
				return fmt.Sprintf("%s[%d] (Q%d) StartTime %v vs %v", l.name, i, p.ID, p.StartTime, q.StartTime)
			case !bitsEqual(p.FinishTime, q.FinishTime):
				return fmt.Sprintf("%s[%d] (Q%d) FinishTime %v vs %v", l.name, i, p.ID, p.FinishTime, q.FinishTime)
			case !bitsEqual(p.Done, q.Done):
				return fmt.Sprintf("%s[%d] (Q%d) Done %v vs %v", l.name, i, p.ID, p.Done, q.Done)
			case !bitsEqual(p.Remaining, q.Remaining):
				return fmt.Sprintf("%s[%d] (Q%d) Remaining %v vs %v", l.name, i, p.ID, p.Remaining, q.Remaining)
			case !bitsEqual(p.Speed, q.Speed):
				return fmt.Sprintf("%s[%d] (Q%d) Speed %v vs %v", l.name, i, p.ID, p.Speed, q.Speed)
			case p.Err != q.Err:
				return fmt.Sprintf("%s[%d] (Q%d) Err %q vs %q", l.name, i, p.ID, p.Err, q.Err)
			}
		}
	}
	return ""
}

// TestParallelTickLockstepDifferential drives identical random workloads —
// mixed priorities, MPL limits, mid-quantum arrivals, scripted
// block/unblock/abort/priority mutations — on one server per worker count,
// ticking them in lockstep and demanding bit-identical snapshots (including
// unexported accrued credit) after every single tick.
func TestParallelTickLockstepDifferential(t *testing.T) {
	counts := workerCounts()
	const trials, ticks = 8, 60
	for trial := 0; trial < trials; trial++ {
		srvs := make([]*Server, len(counts))
		var nQueries int
		for i, w := range counts {
			srv, queries := buildTrial(t, trial, w)
			srvs[i] = srv
			nQueries = len(queries)
		}
		script := trialScript(trial, nQueries, ticks)
		for tick := 0; tick < ticks; tick++ {
			for _, op := range script {
				if op.tick == tick {
					for _, srv := range srvs {
						applyOp(srv, op)
					}
				}
			}
			ref := srvs[0]
			ref.Tick()
			refSnap := ref.Snapshot()
			for i := 1; i < len(srvs); i++ {
				srvs[i].Tick()
				if d := diffSnapshots(refSnap, srvs[i].Snapshot()); d != "" {
					t.Fatalf("trial %d tick %d: workers=%d diverges from workers=1: %s",
						trial, tick, counts[i], d)
				}
				for j, q := range ref.running {
					if !bitsEqual(q.credit, srvs[i].running[j].credit) {
						t.Fatalf("trial %d tick %d: workers=%d Q%d credit %v vs %v",
							trial, tick, counts[i], q.ID, q.credit, srvs[i].running[j].credit)
					}
				}
			}
		}
	}
}

// stressDataset builds the shared TPC-R-style dataset the stress runners
// scan and probe. Kept small enough for -race, large enough that every tick
// overlaps many concurrent steps.
func stressDataset(t testing.TB) *workload.Dataset {
	t.Helper()
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: 8000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// stressServer submits nq mixed queries (the paper's correlated sub-query
// over an index probe, the max-price variant, the group-count variant — all
// driving seq scans of part_i plus B+-tree probes into lineitem) against a
// shared dataset and returns the server.
func stressServer(t testing.TB, ds *workload.Dataset, nq, workers int) *Server {
	t.Helper()
	srv := New(Config{RateC: 400, Quantum: 0.5, Workers: workers, Weights: map[int]float64{0: 1, 1: 2}})
	templates := []workload.QueryTemplate{
		workload.TemplateRetail, workload.TemplateMaxPrice, workload.TemplateGroupCount,
	}
	for i := 0; i < nq; i++ {
		idx := 1 + i%4 // four part tables shared by the queries
		sqlText := workload.QuerySQLVariant(idx, templates[i%len(templates)])
		r, err := ds.DB.Prepare(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		r.CollectRows = false
		srv.Submit(srv.NewQuery(fmt.Sprintf("stress%d", i), sqlText, i%2, r))
	}
	return srv
}

// TestParallelTickStressSharedDataset steps 16 runners concurrently over one
// shared dataset to completion — under `make ci` this runs with -race at
// GOMAXPROCS 1 and 4 — and cross-checks per-query work and finish times
// bitwise against the serial scheduler.
func TestParallelTickStressSharedDataset(t *testing.T) {
	const nq = 16
	ds := stressDataset(t)
	for i := 0; i < 4; i++ {
		if err := ds.CreatePartTable(1+i, 2+i); err != nil {
			t.Fatal(err)
		}
	}

	workers := runtime.NumCPU()
	if workers < 8 {
		workers = 8 // oversubscribe: concurrency bugs don't need cores, just goroutines
	}
	serial := stressServer(t, ds, nq, 1)
	parallel := stressServer(t, ds, nq, workers)
	defer parallel.Close()

	serial.RunUntilIdle(1e6)
	parallel.RunUntilIdle(1e6)

	if d := diffSnapshots(serial.Snapshot(), parallel.Snapshot()); d != "" {
		t.Fatalf("workers=%d diverges from serial after full run: %s", workers, d)
	}
	if len(parallel.Finished()) != nq {
		t.Fatalf("only %d/%d queries finished", len(parallel.Finished()), nq)
	}
	for _, q := range parallel.Finished() {
		if q.Status != StatusFinished {
			t.Errorf("Q%d ended %v: %v", q.ID, q.Status, q.Err)
		}
	}
}

// TestExecPoolClosedServerStillTicks pins the Close contract: a closed
// server keeps ticking correctly, draining batches inline.
func TestExecPoolClosedServerStillTicks(t *testing.T) {
	db := engine.Open()
	srv := New(Config{RateC: 10, Quantum: 0.5, Workers: 4})
	q1 := srv.NewQuery("q1", "", 0, prepare(t, db, "cl1", 8))
	q2 := srv.NewQuery("q2", "", 0, prepare(t, db, "cl2", 8))
	srv.Submit(q1)
	srv.Submit(q2)
	srv.Tick() // spin the pool up
	srv.Close()
	srv.Close() // idempotent
	srv.RunUntilIdle(1e6)
	if q1.Status != StatusFinished || q2.Status != StatusFinished {
		t.Fatalf("status after Close: %v, %v", q1.Status, q2.Status)
	}
}

// TestTickStats sanity-checks the execution-plane observability: rounds and
// steps accumulate over a tick and reset on the next.
func TestTickStats(t *testing.T) {
	db := engine.Open()
	srv := New(Config{RateC: 10, Quantum: 0.5})
	srv.Submit(srv.NewQuery("q1", "", 0, prepare(t, db, "ts1", 8)))
	srv.Submit(srv.NewQuery("q2", "", 0, prepare(t, db, "ts2", 8)))
	srv.Tick()
	st := srv.TickStats()
	if st.Rounds < 1 || st.Steps < 2 {
		t.Fatalf("stats after busy tick: %+v", st)
	}
	srv.RunUntilIdle(1e6)
	srv.Tick() // idle tick: no runnable work
	if st := srv.TickStats(); st.Rounds != 0 || st.Steps != 0 {
		t.Fatalf("stats after idle tick: %+v", st)
	}
}
