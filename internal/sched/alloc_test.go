package sched

import (
	"fmt"
	"testing"
)

// TestTickSteadyStateAllocs pins the zero-allocation steady-state tick: once a
// server is warm — scratch slices at their high-water mark, tracker rings
// pre-sized, the worker pool started — Tick must not allocate at all while no
// query finishes and nothing is admitted. The committed BENCH_tickpath.json
// baseline records the same property; `make bench-check` compares against it.
func TestTickSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	db := benchDB(t)
	for _, mpl := range []int{4, 16} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("mpl%d/workers%d", mpl, workers), func(t *testing.T) {
				// ~4 pages per query per tick against a 2048-page scan: the
				// warm queries are nowhere near finishing during measurement,
				// so every timed Tick is the steady-state path (allocate,
				// execute, settle, observe — no retirement, no admission).
				srv := New(Config{
					RateC:   4 * float64(mpl),
					Quantum: 1,
					Workers: workers,
				})
				defer srv.Close()
				for i := 0; i < mpl; i++ {
					r, err := db.Prepare("SELECT SUM(a) FROM big")
					if err != nil {
						t.Fatal(err)
					}
					r.CollectRows = false
					srv.Submit(srv.NewQuery(fmt.Sprintf("q%d", i), "", 0, r))
				}
				for i := 0; i < 3; i++ {
					srv.Tick()
				}
				avg := testing.AllocsPerRun(50, func() { srv.Tick() })
				if avg != 0 {
					t.Fatalf("steady-state Tick: %.2f allocs/op, want 0", avg)
				}
				if !srv.Busy() {
					t.Fatal("queries finished during measurement; the run did not stay in steady state")
				}
			})
		}
	}
}
