package cluster

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"mqpi/internal/engine/sql"
)

// router places one submission on a shard. pick must be safe for concurrent
// use and must never block: least-loaded reads the shards' published
// snapshots (the same lock-free path progress polls use), never the owners.
type router interface {
	pick(c *Cluster, req SubmitRequest) int
	name() string
}

func newRouter(policy string) (router, error) {
	switch policy {
	case "round-robin":
		return &roundRobin{}, nil
	case "least-loaded":
		return leastLoaded{}, nil
	case "affinity":
		return affinity{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown routing policy %q (want round-robin, least-loaded, or affinity)", policy)
	}
}

// RoutingPolicies lists the valid -routing values, for flag help text.
func RoutingPolicies() []string { return []string{"round-robin", "least-loaded", "affinity"} }

// ValidRouting rejects unknown policy names without building a cluster, so
// flag parsing can fail fast.
func ValidRouting(policy string) error {
	_, err := newRouter(policy)
	return err
}

// roundRobin deals submissions out in shard order. The counter is atomic so
// concurrent submitters never collide; with a serial submitter the placement
// sequence is exactly 0,1,...,n-1,0,...
type roundRobin struct{ next atomic.Uint64 }

func (r *roundRobin) pick(c *Cluster, _ SubmitRequest) int {
	return int((r.next.Add(1) - 1) % uint64(len(c.shards)))
}

func (r *roundRobin) name() string { return "round-robin" }

// leastLoaded sends the query to the shard with the least outstanding
// refined work (running + queued + scheduled, in U's). Ties break to the
// lowest shard index so serial workloads stay deterministic. The probes are
// epoch-snapshot reads: a shard mid-tick serves its previous snapshot, which
// is the freshest view obtainable without stalling the scheduler.
//
// When shards run with shared-scan folding, the policy is fold-aware: if the
// submission's driver table already has a live fold group on some shard, the
// query goes to the least-loaded shard among those — co-locating same-table
// scans so they ride one cursor instead of each paying full I/O on separate
// shards. With no live fold groups anywhere (folding off, or nothing
// currently folded) the scan below never finds a candidate and placement is
// identical to plain least-loaded.
type leastLoaded struct{}

func (leastLoaded) pick(c *Cluster, req SubmitRequest) int {
	table := driverTable(req.SQL)
	best, bestRemaining := -1, 0.0
	foldBest, foldRemaining := -1, 0.0
	for i, m := range c.shards {
		l := m.Load()
		if best < 0 || l.RemainingU < bestRemaining {
			best, bestRemaining = i, l.RemainingU
		}
		if table != "" && hasFoldTable(l.FoldTables, table) {
			if foldBest < 0 || l.RemainingU < foldRemaining {
				foldBest, foldRemaining = i, l.RemainingU
			}
		}
	}
	if foldBest >= 0 {
		return foldBest
	}
	return best
}

// driverTable extracts the scan's driver table from the submission SQL: the
// first FROM entry, which the planner walks to as the left-most seq-scan leaf
// (the fold attachment point). Unparseable or table-less statements yield ""
// and route by load alone.
func driverTable(src string) string {
	sel, err := sql.ParseSelect(src)
	if err != nil || len(sel.From) == 0 {
		return ""
	}
	return sel.From[0].Table
}

// hasFoldTable reports whether table is in the shard's sorted live-group
// list. Linear scan: the list is tiny (one entry per distinct folded table).
func hasFoldTable(tables []string, table string) bool {
	for _, t := range tables {
		if t == table {
			return true
		}
	}
	return false
}

func (leastLoaded) name() string { return "least-loaded" }

// affinity pins a session (or label, or SQL template) to one shard via an
// FNV-1a hash, so repeat submissions share their shard's cache state and a
// session's queries contend only with each other. Aborted or finished
// queries do not move the mapping: the key alone decides.
type affinity struct{}

func (affinity) pick(c *Cluster, req SubmitRequest) int {
	h := fnv.New32a()
	h.Write([]byte(req.affinityKey()))
	return int(h.Sum32() % uint32(len(c.shards)))
}

func (affinity) name() string { return "affinity" }
