package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Metrics holds the cluster-level counters — the front door's own telemetry,
// disjoint from the per-shard service metrics (reachable via each shard's
// /metrics passthrough).
type Metrics struct {
	mu             sync.Mutex
	routed         []uint64 // submissions placed, per shard
	rejected       uint64   // admissions bounced with 429
	delayed        uint64   // queue-mode admissions that borrowed a token
	delaySum       float64  // total borrowed wait, virtual seconds
	execBroadcasts uint64   // DDL/DML statements fanned out to all shards

	buildInfo map[string]string // static build labels for mqpi_build_info ("" = unset)
}

func newClusterMetrics(shards int) *Metrics {
	return &Metrics{routed: make([]uint64, shards)}
}

func (m *Metrics) incRouted(shard int) { m.mu.Lock(); m.routed[shard]++; m.mu.Unlock() }
func (m *Metrics) incRejected()        { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *Metrics) incExecBroadcast()   { m.mu.Lock(); m.execBroadcasts++; m.mu.Unlock() }

func (m *Metrics) observeAdmitDelay(vsec float64) {
	m.mu.Lock()
	m.delayed++
	m.delaySum += vsec
	m.mu.Unlock()
}

// RoutedCounts returns a copy of the per-shard placement counters.
func (m *Metrics) RoutedCounts() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, len(m.routed))
	copy(out, m.routed)
	return out
}

// Rejected reports how many admissions the bucket bounced.
func (m *Metrics) Rejected() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejected
}

// SetBuildInfo installs the static labels rendered on the mqpi_build_info
// gauge, identifying the binary behind the front door from /metrics alone.
func (m *Metrics) SetBuildInfo(labels map[string]string) {
	m.mu.Lock()
	m.buildInfo = labels
	m.mu.Unlock()
}

// Text renders the counters in the Prometheus text exposition format.
func (m *Metrics) Text() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP mqpi_cluster_routed_total Submissions placed on each shard.\n# TYPE mqpi_cluster_routed_total counter\n")
	for i, n := range m.routed {
		fmt.Fprintf(&b, "mqpi_cluster_routed_total{shard=\"%d\"} %d\n", i, n)
	}
	fmt.Fprintf(&b, "# HELP mqpi_cluster_admission_rejected_total Submissions bounced by the token bucket.\n# TYPE mqpi_cluster_admission_rejected_total counter\nmqpi_cluster_admission_rejected_total %d\n", m.rejected)
	fmt.Fprintf(&b, "# HELP mqpi_cluster_admission_delayed_total Queue-mode admissions that borrowed a token.\n# TYPE mqpi_cluster_admission_delayed_total counter\nmqpi_cluster_admission_delayed_total %d\n", m.delayed)
	fmt.Fprintf(&b, "# HELP mqpi_cluster_admission_delay_seconds_sum Total borrowed admission wait in virtual seconds.\n# TYPE mqpi_cluster_admission_delay_seconds_sum counter\nmqpi_cluster_admission_delay_seconds_sum %g\n", m.delaySum)
	fmt.Fprintf(&b, "# HELP mqpi_cluster_exec_broadcast_total DDL/DML statements broadcast to all shards.\n# TYPE mqpi_cluster_exec_broadcast_total counter\nmqpi_cluster_exec_broadcast_total %d\n", m.execBroadcasts)
	if m.buildInfo != nil {
		fmt.Fprintf(&b, "# HELP mqpi_build_info Build metadata; the gauge is constant 1 and the labels identify the binary.\n# TYPE mqpi_build_info gauge\n")
		keys := make([]string, 0, len(m.buildInfo))
		for k := range m.buildInfo {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("mqpi_build_info{")
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", k, m.buildInfo[k])
		}
		b.WriteString("} 1\n")
	}
	return b.String()
}
