package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mqpi/internal/sched"
)

func newTestServer(t *testing.T, cfg Config, pages int) (*httptest.Server, *Cluster) {
	t.Helper()
	cfg.Service.TickEvery = -1
	if cfg.Service.Sched.RateC == 0 {
		cfg.Service.Sched = sched.Config{RateC: 10, Quantum: 0.5}
	}
	cfg.OpenDB = openWith(t, pages)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ts := httptest.NewServer(NewHandler(c))
	t.Cleanup(ts.Close)
	return ts, c
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s = %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
}

// TestClusterHTTPSession drives the sharded tier over the wire: broadcast
// data loading, routed submissions, the merged /overview, per-query ops by
// global ID, and the per-shard passthrough.
func TestClusterHTTPSession(t *testing.T) {
	ts, _ := newTestServer(t, Config{Shards: 3, Routing: "round-robin"}, 0)

	doJSON(t, "POST", ts.URL+"/exec", map[string]string{"sql": "CREATE TABLE w (a BIGINT)"}, 200, nil)
	var vals []string
	for r := 0; r < 64*6; r++ {
		vals = append(vals, fmt.Sprintf("(%d)", r))
	}
	var execRes struct {
		Rows int `json:"rows"`
	}
	doJSON(t, "POST", ts.URL+"/exec",
		map[string]string{"sql": "INSERT INTO w VALUES " + strings.Join(vals, ",")}, 200, &execRes)
	if execRes.Rows != 64*6 {
		t.Fatalf("rows = %d", execRes.Rows)
	}

	// Six queries spread across three shards.
	ids := make([]int, 6)
	for i := range ids {
		var view struct {
			ID     int    `json:"id"`
			Status string `json:"status"`
		}
		doJSON(t, "POST", ts.URL+"/queries", map[string]any{
			"sql": "SELECT SUM(a) FROM w", "label": fmt.Sprintf("q%d", i), "session": fmt.Sprintf("s%d", i%2),
		}, http.StatusCreated, &view)
		if view.Status != "running" {
			t.Fatalf("q%d = %+v", i, view)
		}
		ids[i] = view.ID
	}

	var ov GlobalOverview
	doJSON(t, "POST", ts.URL+"/advance", map[string]float64{"seconds": 0.5}, 200, &ov)
	if len(ov.Shards) != 3 || len(ov.Running) != 6 {
		t.Fatalf("overview: %d shards, %d running", len(ov.Shards), len(ov.Running))
	}
	doJSON(t, "GET", ts.URL+"/overview", nil, 200, &ov)
	for _, s := range ov.Shards {
		if s.Epoch == 0 || s.Now != 0.5 {
			t.Errorf("shard view %+v", s)
		}
	}

	// Per-query ops by global ID.
	doJSON(t, "GET", fmt.Sprintf("%s/queries/%d", ts.URL, ids[3]), nil, 200, nil)
	doJSON(t, "POST", fmt.Sprintf("%s/queries/%d/block", ts.URL, ids[3]), nil, 200, nil)
	doJSON(t, "POST", fmt.Sprintf("%s/queries/%d/priority", ts.URL, ids[3]), map[string]int{"priority": 2}, 200, nil)
	doJSON(t, "POST", fmt.Sprintf("%s/queries/%d/unblock", ts.URL, ids[3]), nil, 200, nil)
	doJSON(t, "POST", fmt.Sprintf("%s/queries/%d/abort", ts.URL, ids[5]), nil, 200, nil)

	var evs struct {
		Events []struct {
			QueryID int    `json:"query"`
			Type    string `json:"type"`
		} `json:"events"`
	}
	doJSON(t, "GET", fmt.Sprintf("%s/events?id=%d", ts.URL, ids[3]), nil, 200, &evs)
	if len(evs.Events) == 0 || evs.Events[0].QueryID != ids[3] {
		t.Fatalf("events = %+v", evs.Events)
	}

	// Shard passthrough: shard 1's own service API with local IDs.
	resp, err := http.Get(ts.URL + "/shards/1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "mqpi_queries_submitted_total") {
		t.Fatalf("shard passthrough: %d %s", resp.StatusCode, body)
	}
	doJSON(t, "GET", ts.URL+"/shards/0/queries", nil, 200, nil)

	// Drain everything; the merged view must conserve all six queries.
	doJSON(t, "POST", ts.URL+"/advance", map[string]float64{"seconds": 60}, 200, &ov)
	if got := len(ov.Running) + len(ov.Queued) + len(ov.Finished); got != 6 {
		t.Fatalf("conservation: %d queries visible, want 6", got)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `mqpi_cluster_routed_total{shard="2"} 2`) {
		t.Errorf("cluster metrics:\n%s", body)
	}
}

// TestClusterHTTP429 pins the admission front door's wire behaviour: reject
// mode answers 429 with a JSON error, queue mode schedules instead.
func TestClusterHTTP429(t *testing.T) {
	ts, _ := newTestServer(t, Config{Shards: 1, AdmitRate: 1, AdmitBurst: 1}, 2)
	doJSON(t, "POST", ts.URL+"/queries", map[string]string{"sql": "SELECT SUM(a) FROM t1"}, http.StatusCreated, nil)
	var errBody map[string]string
	doJSON(t, "POST", ts.URL+"/queries", map[string]string{"sql": "SELECT SUM(a) FROM t1"}, http.StatusTooManyRequests, &errBody)
	if !strings.Contains(errBody["error"], "admission") {
		t.Fatalf("429 body = %v", errBody)
	}
}

func TestClusterHTTPErrors(t *testing.T) {
	ts, _ := newTestServer(t, Config{Shards: 2}, 1)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"GET", "/queries/999", nil, http.StatusNotFound},
		{"GET", "/queries/abc", nil, http.StatusBadRequest},
		{"GET", "/queries/-3", nil, http.StatusBadRequest},
		{"POST", "/queries", map[string]string{"sql": ""}, http.StatusBadRequest},
		{"POST", "/queries", map[string]string{"nope": "x"}, http.StatusBadRequest},
		{"POST", "/queries/999/block", nil, http.StatusNotFound},
		{"POST", "/advance", map[string]float64{"seconds": -1}, http.StatusBadRequest},
		{"GET", "/events", nil, http.StatusBadRequest}, // 2 shards: id required
		{"GET", "/events?id=abc", nil, http.StatusBadRequest},
		{"GET", "/events?id=-2", nil, http.StatusBadRequest},
	}
	for _, c := range cases {
		var errBody map[string]string
		doJSON(t, c.method, ts.URL+c.path, c.body, c.want, &errBody)
		if errBody["error"] == "" {
			t.Errorf("%s %s: no error message", c.method, c.path)
		}
	}
	// An unknown (but well-formed) id mirrors the single-shard service: an
	// empty trace, not an error.
	var evs struct {
		Events []struct{} `json:"events"`
	}
	doJSON(t, "GET", ts.URL+"/events?id=999", nil, http.StatusOK, &evs)
	if len(evs.Events) != 0 {
		t.Errorf("unknown id returned %d events", len(evs.Events))
	}
}
