package cluster

import (
	"math"
	"testing"
)

// TestBucketExactCapacityBurst: the initial balance is exactly the burst,
// and reserve draws down to exactly zero before rejecting.
func TestBucketExactCapacityBurst(t *testing.T) {
	b := newTokenBucket(5, 3)
	for i := 0; i < 3; i++ {
		if d, ok := b.reserve(false); !ok || d != 0 {
			t.Fatalf("take %d = (%g, %v), want (0, true)", i+1, d, ok)
		}
	}
	if bal := b.balance(); math.Abs(bal) > 1e-12 {
		t.Fatalf("post-burst balance = %g, want 0", bal)
	}
	if _, ok := b.reserve(false); ok {
		t.Fatal("burst+1 reserve succeeded in reject mode")
	}
	// Refill never exceeds the burst cap.
	b.advance(100)
	if bal := b.balance(); bal != 3 {
		t.Fatalf("balance after huge refill = %g, want capped at 3", bal)
	}
}

// TestBucketZeroRateRejects: a zero-rate bucket is a hard cap — once the
// burst is gone it rejects forever, even in queue mode (a borrowed token
// could never be repaid, so the implied wait would be infinite).
func TestBucketZeroRateRejects(t *testing.T) {
	b := newTokenBucket(0, 2)
	for i := 0; i < 2; i++ {
		if _, ok := b.reserve(true); !ok {
			t.Fatalf("take %d rejected within burst", i+1)
		}
	}
	for _, queue := range []bool{false, true} {
		if d, ok := b.reserve(queue); ok {
			t.Fatalf("zero-rate reserve(queue=%v) = (%g, true), want rejection", queue, d)
		}
	}
	b.advance(1e6) // refills nothing at rate 0
	if _, ok := b.reserve(true); ok {
		t.Fatal("zero-rate bucket refilled")
	}
}

// TestBucketBorrowAccumulates: consecutive queue-mode borrows owe
// monotonically growing waits — the debt compounds rather than resetting.
func TestBucketBorrowAccumulates(t *testing.T) {
	b := newTokenBucket(2, 1)
	if d, ok := b.reserve(true); !ok || d != 0 {
		t.Fatalf("first = (%g, %v)", d, ok)
	}
	d1, ok := b.reserve(true)
	if !ok || d1 <= 0 {
		t.Fatalf("second = (%g, %v), want positive borrow", d1, ok)
	}
	d2, ok := b.reserve(true)
	if !ok || d2 <= d1 {
		t.Fatalf("third wait %g not beyond second %g", d2, d1)
	}
	// Advancing by the owed time plus one token's worth clears the debt and
	// banks exactly one token.
	b.advance(d2 + 1/2.0)
	if d, ok := b.reserve(true); !ok || d != 0 {
		t.Fatalf("post-repayment reserve = (%g, %v), want immediate", d, ok)
	}
	if bal := b.balance(); math.Abs(bal) > 1e-12 {
		t.Fatalf("balance = %g, want 0 right after exact repayment", bal)
	}
	b.advance(-5) // negative elapsed time is ignored, not a drain
	if bal := b.balance(); bal < -1.0000001 {
		t.Fatalf("negative advance drained the bucket: %g", bal)
	}
}
