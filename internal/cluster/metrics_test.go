package cluster

import (
	"strings"
	"testing"
)

// TestClusterBuildInfoExposition: SetBuildInfo renders a constant-1
// mqpi_build_info gauge with deterministically ordered (sorted) labels, and
// an unset Metrics omits the gauge entirely instead of rendering an empty
// label set.
func TestClusterBuildInfoExposition(t *testing.T) {
	m := newClusterMetrics(2)
	if strings.Contains(m.Text(), "mqpi_build_info") {
		t.Errorf("build info rendered before SetBuildInfo:\n%s", m.Text())
	}
	m.SetBuildInfo(map[string]string{"version": "dev", "go": "go1.x", "mode": "cluster"})
	text := m.Text()
	want := `mqpi_build_info{go="go1.x",mode="cluster",version="dev"} 1` + "\n"
	if !strings.Contains(text, want) {
		t.Errorf("metrics missing %q:\n%s", want, text)
	}
	if !strings.Contains(text, "# TYPE mqpi_build_info gauge\n") {
		t.Errorf("build info gauge missing TYPE line:\n%s", text)
	}
}

// TestClusterShardAccessors: the Shards/Shard passthroughs used by
// mqpi-serve's per-shard wiring expose every underlying manager.
func TestClusterShardAccessors(t *testing.T) {
	c := manualCluster(t, Config{Shards: 3}, 1)
	if c.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", c.Shards())
	}
	for i := 0; i < c.Shards(); i++ {
		if c.Shard(i) == nil {
			t.Fatalf("Shard(%d) is nil", i)
		}
		if _, err := c.Shard(i).Overview(); err != nil {
			t.Fatalf("Shard(%d).Overview: %v", i, err)
		}
	}
}

// TestValidRouting pins the fail-fast flag validation mqpi-serve relies on.
func TestValidRouting(t *testing.T) {
	for _, policy := range RoutingPolicies() {
		if err := ValidRouting(policy); err != nil {
			t.Errorf("ValidRouting(%q): %v", policy, err)
		}
	}
	if err := ValidRouting("random"); err == nil {
		t.Error("ValidRouting accepted unknown policy \"random\"")
	}
}
