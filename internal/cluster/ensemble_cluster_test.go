package cluster

import (
	"fmt"
	"testing"

	"mqpi/internal/core"
	"mqpi/internal/service"
)

// TestClusterEnsembleOverview: with an ensemble-mode service config, the
// merged overview must expose the estimator mode, per-shard blend weights,
// and per-query uncertainty bands that survive the reID merge intact.
func TestClusterEnsembleOverview(t *testing.T) {
	c := manualCluster(t, Config{
		Shards:  2,
		Service: service.Config{Estimator: core.EstimatorEnsemble},
	}, 4)
	for i := 0; i < 4; i++ {
		submit(t, c, fmt.Sprintf("q%d", i))
	}
	if err := c.Advance(1); err != nil {
		t.Fatal(err)
	}
	ov, err := c.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if ov.Estimator != core.EstimatorEnsemble {
		t.Fatalf("overview estimator = %q", ov.Estimator)
	}
	if len(ov.Shards) != 2 {
		t.Fatalf("%d shard summaries, want 2", len(ov.Shards))
	}
	for i, s := range ov.Shards {
		if len(s.Weights) != 3 {
			t.Errorf("shard %d weights = %v, want all three members", i, s.Weights)
		}
	}
	if len(ov.Running) == 0 {
		t.Fatal("no running queries in the merged overview")
	}
	for _, v := range ov.Running {
		lo, point, hi := float64(v.ETALow), float64(v.MultiETA), float64(v.ETAHigh)
		if !(lo <= point && point <= hi) {
			t.Fatalf("Q%d band [%g,%g] misses point %g", v.ID, lo, hi, point)
		}
		if point > 0 && hi-lo <= 0 {
			t.Fatalf("Q%d ensemble band degenerate: %+v", v.ID, v)
		}
	}
}

// TestClusterStageOverviewInert: the default stage mode reports itself and no
// weights — the merged overview surface is unchanged until opted in.
func TestClusterStageOverviewInert(t *testing.T) {
	c := manualCluster(t, Config{Shards: 2}, 2)
	submit(t, c, "q0")
	ov, err := c.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if ov.Estimator != core.EstimatorStage {
		t.Fatalf("overview estimator = %q", ov.Estimator)
	}
	for i, s := range ov.Shards {
		if s.Weights != nil {
			t.Errorf("shard %d exposes weights %v in stage mode", i, s.Weights)
		}
	}
}
