package cluster

import (
	"fmt"
	"math"
	"testing"

	"mqpi/internal/engine"
	"mqpi/internal/engine/types"
	"mqpi/internal/sched"
	"mqpi/internal/service"
)

// openWith returns an OpenDB factory that pre-loads `pages` heap pages (64
// rows each) into table t1 on every shard, so replicas start identical.
func openWith(t testing.TB, pages int) func() *engine.DB {
	t.Helper()
	return func() *engine.DB {
		db := engine.Open()
		if _, err := db.Exec("CREATE TABLE t1 (a BIGINT)"); err != nil {
			t.Fatal(err)
		}
		cat := db.Catalog()
		for i := 0; i < pages*64; i++ {
			if err := cat.Insert("t1", types.Row{types.NewInt(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
}

// manualCluster builds a manual-clock cluster (virtual time only moves
// through Advance) over pre-loaded shards.
func manualCluster(t testing.TB, cfg Config, pages int) *Cluster {
	t.Helper()
	cfg.Service.TickEvery = -1
	if cfg.Service.Sched.RateC == 0 {
		cfg.Service.Sched = sched.Config{RateC: 10, Quantum: 0.5}
	}
	cfg.OpenDB = openWith(t, pages)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func submit(t testing.TB, c *Cluster, label string) service.QueryView {
	t.Helper()
	v, err := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{
		Label: label, SQL: "SELECT SUM(a) FROM t1",
	}})
	if err != nil {
		t.Fatalf("submit %s: %v", label, err)
	}
	return v
}

func TestGIDBijection(t *testing.T) {
	c := manualCluster(t, Config{Shards: 3}, 1)
	seen := map[int]bool{}
	for shard := 0; shard < 3; shard++ {
		for local := 1; local <= 5; local++ {
			g := c.gid(shard, local)
			if g <= 0 || seen[g] {
				t.Fatalf("gid(%d,%d) = %d collides", shard, local, g)
			}
			seen[g] = true
			s2, l2, err := c.locate(g)
			if err != nil || s2 != shard || l2 != local {
				t.Fatalf("locate(%d) = (%d,%d,%v), want (%d,%d)", g, s2, l2, err, shard, local)
			}
		}
	}
	if _, _, err := c.locate(0); err == nil {
		t.Fatal("locate(0) accepted")
	}
	if _, _, err := c.locate(-7); err == nil {
		t.Fatal("locate(-7) accepted")
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	c := manualCluster(t, Config{Shards: 3, Routing: "round-robin"}, 2)
	for i := 0; i < 9; i++ {
		submit(t, c, fmt.Sprintf("q%d", i))
	}
	for i, n := range c.Metrics().RoutedCounts() {
		if n != 3 {
			t.Errorf("shard %d routed %d, want 3", i, n)
		}
	}
}

// TestLeastLoadedBalances pins the live-load probe: after shard 0 absorbs
// work, the next submission must go elsewhere.
func TestLeastLoadedBalances(t *testing.T) {
	c := manualCluster(t, Config{Shards: 2, Routing: "least-loaded"}, 5)
	v0 := submit(t, c, "first") // all empty: tie-break to shard 0
	if s, _, _ := c.locate(v0.ID); s != 0 {
		t.Fatalf("first query on shard %d, want 0", s)
	}
	v1 := submit(t, c, "second") // shard 0 now owes ~6 U
	if s, _, _ := c.locate(v1.ID); s != 1 {
		t.Fatalf("second query on shard %d, want 1", s)
	}
}

// TestLeastLoadedSaturated: with every shard equally saturated the policy
// must still place deterministically (lowest index), not loop or panic.
func TestLeastLoadedSaturated(t *testing.T) {
	c := manualCluster(t, Config{Shards: 3, Routing: "least-loaded"}, 5)
	// Saturate all shards identically via round-robin-by-hand.
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			submit(t, c, fmt.Sprintf("fill-%d-%d", i, j))
		}
	}
	loads := c.Loads()
	for i := 1; i < 3; i++ {
		if math.Abs(loads[i].RemainingU-loads[0].RemainingU) > 1e-9 {
			t.Fatalf("shards unevenly loaded: %+v", loads)
		}
	}
	v := submit(t, c, "tiebreak")
	if s, _, _ := c.locate(v.ID); s != 0 {
		t.Errorf("saturated tie broke to shard %d, want 0", s)
	}
}

// TestSingleShardDegenerate: a 1-shard cluster must behave exactly like the
// plain service — identity gid mapping, every policy valid.
func TestSingleShardDegenerate(t *testing.T) {
	for _, policy := range RoutingPolicies() {
		t.Run(policy, func(t *testing.T) {
			c := manualCluster(t, Config{Shards: 1, Routing: policy}, 2)
			v := submit(t, c, "only")
			if v.ID != 1 {
				t.Fatalf("gid = %d, want 1 (identity on 1 shard)", v.ID)
			}
			if err := c.Advance(60); err != nil {
				t.Fatal(err)
			}
			p, err := c.Progress(v.ID)
			if err != nil || p.Status != "finished" {
				t.Fatalf("progress = %+v, %v", p, err)
			}
			evs, err := c.Events(v.ID)
			if err != nil || len(evs) == 0 {
				t.Fatalf("events = %v, %v", evs, err)
			}
		})
	}
}

// TestAffinityStickyAcrossAborts: the affinity mapping is a pure function of
// the session key — aborting a session's queries must not move it.
func TestAffinityStickyAcrossAborts(t *testing.T) {
	c := manualCluster(t, Config{Shards: 4, Routing: "affinity"}, 2)
	sessions := []string{"alice", "bob", "carol", "dave", "erin"}
	home := map[string]int{}
	var aborted []int
	for _, s := range sessions {
		v, err := c.Submit(SubmitRequest{
			SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM t1"},
			Session:       s,
		})
		if err != nil {
			t.Fatal(err)
		}
		shard, _, _ := c.locate(v.ID)
		home[s] = shard
		aborted = append(aborted, v.ID)
	}
	for _, id := range aborted {
		if err := c.Abort(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range sessions {
		v, err := c.Submit(SubmitRequest{
			SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM t1"},
			Session:       s,
		})
		if err != nil {
			t.Fatal(err)
		}
		if shard, _, _ := c.locate(v.ID); shard != home[s] {
			t.Errorf("session %s moved shard %d -> %d after aborts", s, home[s], shard)
		}
	}
}

// TestAffinityKeyFallback: without a session the key falls back to the
// label, then to the SQL text, so template affinity works out of the box.
func TestAffinityKeyFallback(t *testing.T) {
	c := manualCluster(t, Config{Shards: 4, Routing: "affinity"}, 1)
	byLabel1 := submit(t, c, "report-7")
	byLabel2 := submit(t, c, "report-7")
	s1, _, _ := c.locate(byLabel1.ID)
	s2, _, _ := c.locate(byLabel2.ID)
	if s1 != s2 {
		t.Errorf("same label split across shards %d and %d", s1, s2)
	}
	sql1, _ := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM t1"}})
	sql2, _ := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM t1"}})
	s1, _, _ = c.locate(sql1.ID)
	s2, _, _ = c.locate(sql2.ID)
	if s1 != s2 {
		t.Errorf("same SQL split across shards %d and %d", s1, s2)
	}
}

func TestUnknownPolicy(t *testing.T) {
	if _, err := New(Config{Routing: "random"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestExecBroadcast: DDL/DML must reach every replica; a query routed to any
// shard then sees the same data.
func TestExecBroadcast(t *testing.T) {
	c := manualCluster(t, Config{Shards: 3, Routing: "round-robin"}, 0)
	if _, err := c.Exec("CREATE TABLE b (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Exec("INSERT INTO b VALUES (1),(2),(3)"); err != nil || n != 3 {
		t.Fatalf("insert = %d, %v", n, err)
	}
	// One query per shard via round-robin: all must finish with the data.
	var ids []int
	for i := 0; i < 3; i++ {
		v, err := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM b"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if err := c.Advance(60); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		p, err := c.Progress(id)
		if err != nil || p.Status != "finished" {
			t.Fatalf("query %d = %+v, %v", id, p, err)
		}
	}
	if got := c.Metrics().Text(); got == "" {
		t.Fatal("empty metrics text")
	}
}

// TestOverviewMerge: the global view must union all shards with global IDs,
// expose per-shard epochs, and count conservation: every admitted query
// appears in exactly one shard section.
func TestOverviewMerge(t *testing.T) {
	c := manualCluster(t, Config{Shards: 3, Routing: "round-robin"}, 3)
	var ids []int
	for i := 0; i < 7; i++ {
		ids = append(ids, submit(t, c, fmt.Sprintf("q%d", i)).ID)
	}
	if err := c.Advance(1); err != nil {
		t.Fatal(err)
	}
	ov, err := c.Overview()
	if err != nil {
		t.Fatal(err)
	}
	if len(ov.Shards) != 3 {
		t.Fatalf("%d shard summaries, want 3", len(ov.Shards))
	}
	for i, s := range ov.Shards {
		if s.Shard != i || s.Epoch == 0 {
			t.Errorf("shard summary %d = %+v", i, s)
		}
	}
	seen := map[int]int{}
	for _, v := range ov.Running {
		seen[v.ID]++
	}
	for _, v := range ov.Queued {
		seen[v.ID]++
	}
	for _, v := range ov.Finished {
		seen[v.ID]++
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("query %d appears %d times in global view, want exactly 1", id, seen[id])
		}
	}
	for i := 1; i < len(ov.Running); i++ {
		if ov.Running[i].ID <= ov.Running[i-1].ID {
			t.Errorf("running not sorted by gid: %d after %d", ov.Running[i].ID, ov.Running[i-1].ID)
		}
	}
}

// TestOpsRouteByGID: block/unblock/priority/abort must reach the owning
// shard, and unknown gids must say not-found rather than mis-route.
func TestOpsRouteByGID(t *testing.T) {
	c := manualCluster(t, Config{Shards: 2, Routing: "round-robin"}, 3)
	a, b := submit(t, c, "a"), submit(t, c, "b")
	if err := c.Block(b.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPriority(a.ID, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Unblock(b.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(a.ID); err != nil {
		t.Fatal(err)
	}
	p, err := c.Progress(a.ID)
	if err != nil || p.Status != "aborted" {
		t.Fatalf("aborted query = %+v, %v", p, err)
	}
	if err := c.Block(999); err == nil {
		t.Fatal("block of unknown gid succeeded")
	}
	if _, err := c.Events(0); err == nil {
		t.Fatal("multi-shard Events(0) should require an explicit id")
	}
}

// TestAdmissionBurstBoundary: a bucket with capacity B admits exactly B
// back-to-back submissions and rejects the B+1st — the boundary is exact,
// not off by one.
func TestAdmissionBurstBoundary(t *testing.T) {
	c := manualCluster(t, Config{Shards: 1, AdmitRate: 1, AdmitBurst: 3}, 2)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM t1"}}); err != nil {
			t.Fatalf("submission %d within burst rejected: %v", i+1, err)
		}
	}
	_, err := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM t1"}})
	if err == nil || c.Metrics().Rejected() != 1 {
		t.Fatalf("burst+1 submission: err=%v rejected=%d", err, c.Metrics().Rejected())
	}
	// One virtual second refills one token.
	if err := c.Advance(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM t1"}}); err != nil {
		t.Fatalf("post-refill submission rejected: %v", err)
	}
}

// TestAdmissionQueueMode: with AdmitQueue the B+1st submission is admitted
// as a scheduled arrival whose delay equals the token wait.
func TestAdmissionQueueMode(t *testing.T) {
	c := manualCluster(t, Config{Shards: 1, AdmitRate: 2, AdmitBurst: 1, AdmitQueue: true}, 2)
	v1, err := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM t1"}})
	if err != nil || v1.Status != "running" {
		t.Fatalf("first = %+v, %v", v1, err)
	}
	// Bucket empty: the next borrows half a second (deficit 1 / rate 2).
	v2, err := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{SQL: "SELECT SUM(a) FROM t1"}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Status != "scheduled" {
		t.Fatalf("borrowed admission = %+v, want scheduled arrival", v2)
	}
	if err := c.Advance(1); err != nil {
		t.Fatal(err)
	}
	p, err := c.Progress(v2.ID)
	if err != nil || p.Status == "scheduled" {
		t.Fatalf("after refill: %+v, %v", p, err)
	}
}

// TestLeastLoadedFoldAware: when a shard advertises a live fold group on the
// submission's driver table, least-loaded routing co-locates the query there
// even though another shard carries strictly less work. Submissions on other
// tables still fall back to plain least-loaded.
func TestLeastLoadedFoldAware(t *testing.T) {
	cfg := Config{Shards: 2, Routing: "least-loaded"}
	cfg.Service.Sched = sched.Config{RateC: 10, Quantum: 0.5, Fold: true}
	c := manualCluster(t, cfg, 40)
	if _, err := c.Exec("CREATE TABLE t2 (b BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t2 VALUES (1),(2),(3)"); err != nil {
		t.Fatal(err)
	}

	v0 := submit(t, c, "seed") // all empty: tie-break to shard 0
	if s, _, _ := c.locate(v0.ID); s != 0 {
		t.Fatalf("seed on shard %d, want 0", s)
	}
	// One quantum: the seed attaches to its (so far 1-member) fold group and
	// shard 0's published snapshot starts advertising t1.
	if err := c.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	loads := c.Loads()
	if len(loads[0].FoldTables) != 1 || loads[0].FoldTables[0] != "t1" {
		t.Fatalf("shard 0 fold tables = %v, want [t1]", loads[0].FoldTables)
	}
	if loads[0].RemainingU <= loads[1].RemainingU {
		t.Fatalf("precondition broken: shard 0 (%.2f U) not more loaded than shard 1 (%.2f U)",
			loads[0].RemainingU, loads[1].RemainingU)
	}

	// Same driver table: must co-locate with the live group on the busier
	// shard 0, where plain least-loaded would have picked shard 1.
	v1 := submit(t, c, "join")
	if s, _, _ := c.locate(v1.ID); s != 0 {
		t.Fatalf("same-table scan routed to shard %d, want co-located on 0", s)
	}

	// Different table, no live group anywhere: plain least-loaded → shard 1.
	v2, err := c.Submit(SubmitRequest{SubmitRequest: service.SubmitRequest{
		Label: "other", SQL: "SELECT SUM(b) FROM t2",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if s, _, _ := c.locate(v2.ID); s != 1 {
		t.Fatalf("other-table scan routed to shard %d, want least-loaded shard 1", s)
	}
}
