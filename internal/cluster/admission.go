package cluster

import "sync"

// tokenBucket is the front door's admission throttle, denominated in
// admissions per virtual second so manual-clock clusters (tests, the sim)
// stay deterministic: the bucket refills through the same Advance calls that
// move the shards' clocks. In queue mode the bucket lends tokens from the
// future — the balance goes negative and the borrower carries the
// corresponding wait as a scheduled-arrival delay.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per virtual second
	burst  float64 // capacity; also the initial balance
	tokens float64 // current balance; negative = borrowed ahead
}

func newTokenBucket(rate, burst float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst}
}

// advance refills the bucket for vsec virtual seconds, capped at burst.
func (b *tokenBucket) advance(vsec float64) {
	if vsec <= 0 {
		return
	}
	b.mu.Lock()
	b.tokens += b.rate * vsec
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// reserve takes one token. With a token in hand the admission is immediate
// (delay 0). On an empty bucket: queue mode borrows the token and returns
// the virtual-time wait until the refill covers the debt; reject mode (and
// any zero-rate bucket, whose debt could never be repaid) returns ok=false.
func (b *tokenBucket) reserve(queue bool) (delay float64, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	if !queue || b.rate <= 0 {
		return 0, false
	}
	deficit := 1 - b.tokens
	b.tokens--
	return deficit / b.rate, true
}

// balance reports the current token balance (tests and metrics).
func (b *tokenBucket) balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
