// Package cluster is the sharded serving tier: N independent engine+scheduler
// shards — each a service.Manager with its own replicated dataset — behind a
// front-door router with pluggable placement policies and token-bucket
// admission control. Every shard keeps satisfying the paper's §2.2 stage
// model locally; the cluster merges the shards' lock-free epoch snapshots
// into one global progress view without ever blocking on an owner goroutine.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mqpi/internal/engine"
	"mqpi/internal/service"
)

// ErrAdmission is returned when the token bucket rejects a submission (the
// HTTP layer maps it to 429 Too Many Requests).
var ErrAdmission = errors.New("cluster: admission rejected")

// Config assembles a cluster. The zero value is a single unthrottled
// round-robin shard — exactly the plain service.
type Config struct {
	// Shards is the number of independent engine+scheduler shards (default 1).
	Shards int
	// Routing selects the placement policy: "round-robin" (default),
	// "least-loaded", or "affinity".
	Routing string
	// AdmitRate is the token-bucket refill rate in admissions per virtual
	// second. Zero disables admission control entirely.
	AdmitRate float64
	// AdmitBurst is the bucket capacity (default: max(AdmitRate, 1)).
	AdmitBurst float64
	// AdmitQueue, when true, converts an empty bucket into a scheduled
	// arrival (the query is admitted with a delay equal to the token wait)
	// instead of rejecting with ErrAdmission.
	AdmitQueue bool
	// Service configures every shard's manager identically.
	Service service.Config
	// OpenDB builds one engine per shard (default engine.Open). The shards
	// are replicas: Exec broadcasts DDL/DML to all of them.
	OpenDB func() *engine.DB
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Routing == "" {
		c.Routing = "round-robin"
	}
	if c.AdmitRate > 0 && c.AdmitBurst <= 0 {
		c.AdmitBurst = c.AdmitRate
		if c.AdmitBurst < 1 {
			c.AdmitBurst = 1
		}
	}
	if c.OpenDB == nil {
		c.OpenDB = engine.Open
	}
	return c
}

// Cluster is the serving tier's front door. All mutating calls route or
// broadcast to the shards; all reads merge the shards' published snapshots.
type Cluster struct {
	cfg     Config
	shards  []*service.Manager
	router  router
	bucket  *tokenBucket
	metrics *Metrics

	// live admission runs on the wall clock scaled to virtual seconds;
	// manual mode (TickEvery < 0) feeds the bucket through Advance instead.
	live      bool
	timeScale float64
	clockMu   sync.Mutex
	lastWall  time.Time

	closeOnce sync.Once
}

// New builds and starts the cluster. Routing must name a known policy.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	r, err := newRouter(cfg.Routing)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       cfg,
		router:    r,
		metrics:   newClusterMetrics(cfg.Shards),
		live:      cfg.Service.TickEvery >= 0,
		timeScale: cfg.Service.TimeScale,
		lastWall:  time.Now(),
	}
	if c.timeScale <= 0 {
		c.timeScale = 1
	}
	if cfg.AdmitRate > 0 {
		c.bucket = newTokenBucket(cfg.AdmitRate, cfg.AdmitBurst)
	}
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, service.New(cfg.OpenDB(), cfg.Service))
	}
	return c, nil
}

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard exposes one shard's manager (read-only passthroughs and tests).
func (c *Cluster) Shard(i int) *service.Manager { return c.shards[i] }

// gid maps a shard-local query ID to the cluster-global one. The mapping is
// a stateless bijection — gid mod Shards recovers the shard — so the router
// needs no ID table and the decode below never misses.
func (c *Cluster) gid(shard, local int) int {
	return (local-1)*len(c.shards) + shard + 1
}

// locate inverts gid. Global IDs start at 1, like shard-local ones.
func (c *Cluster) locate(gid int) (shard, local int, err error) {
	if gid <= 0 {
		return 0, 0, fmt.Errorf("cluster: invalid query id %d", gid)
	}
	return (gid - 1) % len(c.shards), (gid-1)/len(c.shards) + 1, nil
}

// SubmitRequest adds the routing inputs to the service-level request.
type SubmitRequest struct {
	service.SubmitRequest
	// Session is the affinity key: requests sharing a session land on the
	// same shard under the affinity policy (falls back to Label, then SQL).
	Session string `json:"session,omitempty"`
}

func (r SubmitRequest) affinityKey() string {
	switch {
	case r.Session != "":
		return r.Session
	case r.Label != "":
		return r.Label
	default:
		return r.SQL
	}
}

// Submit runs the front door: admission first (cheapest rejection), then
// placement, then the shard-local submit. The returned view carries the
// cluster-global query ID.
func (c *Cluster) Submit(req SubmitRequest) (service.QueryView, error) {
	if c.bucket != nil {
		c.tickLiveClock()
		delay, ok := c.bucket.reserve(c.cfg.AdmitQueue)
		if !ok {
			c.metrics.incRejected()
			return service.QueryView{}, fmt.Errorf("%w: token bucket empty (rate %g/s)", ErrAdmission, c.cfg.AdmitRate)
		}
		if delay > 0 {
			// Queue-on-full: ride the shard's arrival calendar so the wait
			// costs no goroutine and stays deterministic in virtual time.
			req.Delay += delay
			c.metrics.observeAdmitDelay(delay)
		}
	}
	shard := c.router.pick(c, req)
	view, err := c.shards[shard].Submit(req.SubmitRequest)
	if err != nil {
		return view, err
	}
	c.metrics.incRouted(shard)
	view.ID = c.gid(shard, view.ID)
	return view, nil
}

// tickLiveClock feeds wall time (scaled to virtual seconds) into the bucket
// when the shards run their own wall-clock tickers. Manual-clock clusters
// (TickEvery < 0) refill only through Advance.
func (c *Cluster) tickLiveClock() {
	if !c.live {
		return
	}
	c.clockMu.Lock()
	now := time.Now()
	dt := now.Sub(c.lastWall).Seconds() * c.timeScale
	c.lastWall = now
	c.clockMu.Unlock()
	if dt > 0 {
		c.bucket.advance(dt)
	}
}

// Progress returns one query's view by global ID.
func (c *Cluster) Progress(gid int) (service.QueryView, error) {
	shard, local, err := c.locate(gid)
	if err != nil {
		return service.QueryView{}, err
	}
	view, err := c.shards[shard].Progress(local)
	if err != nil {
		return view, err
	}
	view.ID = gid
	return view, nil
}

func (c *Cluster) onShard(gid int, f func(m *service.Manager, local int) error) error {
	shard, local, err := c.locate(gid)
	if err != nil {
		return err
	}
	return f(c.shards[shard], local)
}

// Block suspends a query by global ID (§3.1 victim operation).
func (c *Cluster) Block(gid int) error {
	return c.onShard(gid, func(m *service.Manager, id int) error { return m.Block(id) })
}

// Unblock resumes a blocked query by global ID.
func (c *Cluster) Unblock(gid int) error {
	return c.onShard(gid, func(m *service.Manager, id int) error { return m.Unblock(id) })
}

// Abort kills a query by global ID.
func (c *Cluster) Abort(gid int) error {
	return c.onShard(gid, func(m *service.Manager, id int) error { return m.Abort(id) })
}

// SetPriority reweights a query by global ID.
func (c *Cluster) SetPriority(gid int, p int) error {
	return c.onShard(gid, func(m *service.Manager, id int) error { return m.SetPriority(id, p) })
}

// Events returns a query's lifecycle trace by global ID (0 = all events of
// shard 0, matching the single-shard service's "everything" behaviour only
// when the cluster is degenerate; callers should pass a real ID).
func (c *Cluster) Events(gid int) ([]service.Event, error) {
	if gid == 0 {
		if len(c.shards) == 1 {
			return c.shards[0].Events(0), nil
		}
		return nil, errors.New("cluster: events need an explicit query id")
	}
	shard, local, err := c.locate(gid)
	if err != nil {
		return nil, err
	}
	evs := c.shards[shard].Events(local)
	out := make([]service.Event, len(evs))
	for i, e := range evs {
		e.QueryID = c.gid(shard, e.QueryID)
		out[i] = e
	}
	return out, nil
}

// Exec broadcasts DDL/DML to every shard serially — the shards are replicas
// and must stay byte-identical. It returns the first shard's row count; a
// mid-broadcast error leaves later shards untouched and is reported with the
// failing shard's index.
func (c *Cluster) Exec(sql string) (int, error) {
	rows := 0
	for i, m := range c.shards {
		n, err := m.Exec(sql)
		if err != nil {
			return 0, fmt.Errorf("cluster: exec on shard %d: %w", i, err)
		}
		if i == 0 {
			rows = n
		}
	}
	c.metrics.incExecBroadcast()
	return rows, nil
}

// Advance pushes virtual time forward on every shard, serially in shard
// order so each shard's trace is independent of the others' work. The
// admission bucket refills in the same virtual seconds.
func (c *Cluster) Advance(vsec float64) error {
	if c.bucket != nil && !c.live {
		c.bucket.advance(vsec)
	}
	for i, m := range c.shards {
		if err := m.Advance(vsec); err != nil {
			return fmt.Errorf("cluster: advance shard %d: %w", i, err)
		}
	}
	return nil
}

// Close shuts every shard down.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		for _, m := range c.shards {
			m.Close()
		}
	})
}

// ShardOverview is one shard's contribution to the global view: its epoch is
// exposed so operators can see how fresh each shard's snapshot is.
type ShardOverview struct {
	Shard        int             `json:"shard"`
	Epoch        uint64          `json:"epoch"`
	Now          float64         `json:"now"`
	Running      int             `json:"running"`
	Queued       int             `json:"queued"`
	Scheduled    int             `json:"scheduled"`
	Finished     int             `json:"finished"`
	RemainingU   float64         `json:"remaining_u"`
	QuiescentETA service.Seconds `json:"quiescent_eta"`
	// Weights carries the shard's current ensemble blend weights by member
	// (omitted in stage mode). Shards calibrate independently — each sees
	// only its own finish residuals — so the weights can legitimately differ.
	Weights map[string]float64 `json:"estimator_weights,omitempty"`
}

// GlobalOverview merges the shards' snapshots: per-shard summaries plus the
// union of query views with cluster-global IDs, each section sorted by ID.
type GlobalOverview struct {
	Shards    []ShardOverview     `json:"shards"`
	Routing   string              `json:"routing"`
	AdmitRate float64             `json:"admit_rate"`
	Estimator string              `json:"estimator"` // estimate-plane mode, identical on every shard
	Running   []service.QueryView `json:"running"`
	Queued    []service.QueryView `json:"queued"`
	Scheduled []service.QueryView `json:"scheduled"`
	Finished  []service.QueryView `json:"finished"`
}

// Overview builds the merged global view. Each shard contributes its latest
// published snapshot via the service's lock-free read path, so the merge
// never waits on any shard's owner goroutine — it is pure reads plus sorts.
func (c *Cluster) Overview() (GlobalOverview, error) {
	out := GlobalOverview{Routing: c.cfg.Routing, AdmitRate: c.cfg.AdmitRate}
	for i, m := range c.shards {
		ov, err := m.Overview()
		if err != nil {
			return out, fmt.Errorf("cluster: overview shard %d: %w", i, err)
		}
		load := m.Load()
		out.Estimator = ov.Estimator
		out.Shards = append(out.Shards, ShardOverview{
			Shard: i, Epoch: ov.Epoch, Now: ov.Now,
			Running: len(ov.Running), Queued: len(ov.Queued),
			Scheduled: len(ov.Scheduled), Finished: len(ov.Finished),
			RemainingU:   load.RemainingU,
			QuiescentETA: ov.QuiescentETA,
			Weights:      ov.Weights,
		})
		out.Running = append(out.Running, c.reID(i, ov.Running)...)
		out.Queued = append(out.Queued, c.reID(i, ov.Queued)...)
		out.Scheduled = append(out.Scheduled, c.reID(i, ov.Scheduled)...)
		out.Finished = append(out.Finished, c.reID(i, ov.Finished)...)
	}
	for _, s := range [][]service.QueryView{out.Running, out.Queued, out.Scheduled, out.Finished} {
		sort.Slice(s, func(a, b int) bool { return s[a].ID < s[b].ID })
	}
	return out, nil
}

func (c *Cluster) reID(shard int, views []service.QueryView) []service.QueryView {
	out := make([]service.QueryView, len(views))
	for i, v := range views {
		v.ID = c.gid(shard, v.ID)
		out[i] = v
	}
	return out
}

// Loads returns every shard's live load probe (router telemetry and tests).
func (c *Cluster) Loads() []service.Load {
	out := make([]service.Load, len(c.shards))
	for i, m := range c.shards {
		out[i] = m.Load()
	}
	return out
}

// Metrics exposes the cluster-level counters.
func (c *Cluster) Metrics() *Metrics { return c.metrics }
