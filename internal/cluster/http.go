package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"mqpi/internal/service"
)

// NewHandler exposes the cluster as an HTTP/JSON API mirroring the
// single-shard service API, with cluster-global query IDs throughout:
//
//	POST /queries                submit {"sql","label","priority","delay","session"};
//	                             429 when the token bucket rejects
//	GET  /queries                merged global overview (same as /overview)
//	GET  /overview               merged global overview with per-shard epochs
//	GET  /queries/{id}           one query's progress by global ID
//	POST /queries/{id}/block     suspend
//	POST /queries/{id}/unblock   resume
//	POST /queries/{id}/abort     kill
//	POST /queries/{id}/priority  {"priority": n}
//	GET  /events?id=             per-query event trace by global ID
//	GET  /metrics                cluster-level counters (Prometheus text)
//	POST /exec                   {"sql"}: broadcast DDL/DML to every shard
//	POST /advance                {"seconds"}: push every shard's clock
//	GET  /shards/{i}/...         passthrough to shard i's full service API
//	GET  /healthz                liveness probe
func NewHandler(c *Cluster) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /queries", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if strings.TrimSpace(req.SQL) == "" {
			writeError(w, http.StatusBadRequest, errors.New("missing sql"))
			return
		}
		view, err := c.Submit(req)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, view)
	})

	overview := func(w http.ResponseWriter, r *http.Request) {
		out, err := c.Overview()
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	}
	mux.HandleFunc("GET /queries", overview)
	mux.HandleFunc("GET /overview", overview)

	mux.HandleFunc("GET /queries/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := pathID(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		view, err := c.Progress(id)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	op := func(name string, f func(int) error) func(http.ResponseWriter, *http.Request) {
		return func(w http.ResponseWriter, r *http.Request) {
			id, err := pathID(r)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if err := f(id); err != nil {
				writeError(w, statusOf(err), err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"ok": true, "op": name, "id": id})
		}
	}
	mux.HandleFunc("POST /queries/{id}/block", op("block", c.Block))
	mux.HandleFunc("POST /queries/{id}/unblock", op("unblock", c.Unblock))
	mux.HandleFunc("POST /queries/{id}/abort", op("abort", c.Abort))

	mux.HandleFunc("POST /queries/{id}/priority", func(w http.ResponseWriter, r *http.Request) {
		id, err := pathID(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var req struct {
			Priority int `json:"priority"`
		}
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := c.SetPriority(id, req.Priority); err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "op": "priority", "id": id, "priority": req.Priority})
	})

	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		s := r.URL.Query().Get("id")
		id := 0
		if s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("invalid id %q", s))
				return
			}
			id = n
		}
		evs, err := c.Events(id)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"events": evs})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, c.Metrics().Text())
	})

	mux.HandleFunc("POST /exec", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			SQL string `json:"sql"`
		}
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		n, err := c.Exec(req.SQL)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rows": n})
	})

	mux.HandleFunc("POST /advance", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Seconds float64 `json:"seconds"`
		}
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := c.Advance(req.Seconds); err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		overview(w, r)
	})

	// Each shard's full single-engine API stays reachable for drill-down:
	// /shards/2/metrics is shard 2's Prometheus page, /shards/2/diagram its
	// stage diagram, with shard-local query IDs.
	for i := range c.shards {
		prefix := "/shards/" + strconv.Itoa(i)
		mux.Handle(prefix+"/", http.StripPrefix(prefix, service.NewHandler(c.shards[i])))
	}

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	return mux
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func pathID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id <= 0 {
		return 0, errors.New("invalid query id")
	}
	return id, nil
}

// statusOf extends the service's error mapping with the front door's own
// case: an admission rejection is 429 (retry after the bucket refills).
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrAdmission):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, service.ErrBusy):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
