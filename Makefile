GO ?= go

.PHONY: build test bench bench-all race vet ci serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench tracks the poll-path baseline committed in BENCH_pollpath.json.
bench:
	$(GO) test -run '^$$' -bench ConcurrentPoll -benchmem ./internal/service/

bench-all:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

serve:
	$(GO) run ./cmd/mqpi-serve -demo

# ci is the gate: static checks, a clean build, and the full suite under the
# race detector (load-bearing now that the experiment harness spawns worker
# goroutines and the serving layer runs a live ticker against concurrent
# clients). The service/sched/serve packages are named explicitly so a future
# split of `race` cannot silently drop them from under the detector.
ci: vet build race
	$(GO) test -race ./internal/service/... ./internal/sched/... ./cmd/mqpi-serve/...
