GO ?= go
COVER_PROFILE ?= cover.out

.PHONY: build test bench bench-all bench-check race vet ci serve cover cover-check fuzz-smoke calibration-smoke load-smoke bench-load

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench tracks the poll-path baseline committed in BENCH_pollpath.json, the
# tick-path baseline (MPL 1/4/16 × worker counts) in BENCH_tickpath.json, and
# the shared-scan baseline (1/2/4/8 members, solo vs folded) in
# BENCH_sharedscan.json.
bench:
	$(GO) test -run '^$$' -bench ConcurrentPoll -benchmem ./internal/service/
	$(GO) test -run '^$$' -bench ParallelTick -benchmem ./internal/sched/
	$(GO) test -run '^$$' -bench SharedScan -benchmem ./internal/sched/

bench-all:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

serve:
	$(GO) run ./cmd/mqpi-serve -demo

# ci is the gate: static checks, a clean build, and the full suite under the
# race detector (load-bearing now that the experiment harness spawns worker
# goroutines and the serving layer runs a live ticker against concurrent
# clients). The service/sched/serve packages are named explicitly so a future
# split of `race` cannot silently drop them from under the detector.
ci: vet build race
	$(GO) test -race ./internal/service/... ./internal/sched/... ./internal/cluster/... ./cmd/mqpi-serve/...
	# Three-phase tick determinism: the differential + stress suite must hold
	# on one core and on several, since goroutine interleaving (and therefore
	# any illegal cross-runner ordering dependence) differs between the two.
	# -count=1: GOMAXPROCS is not in the test cache key, so without it the
	# second run would silently replay the first run's cached verdict.
	GOMAXPROCS=1 $(GO) test -race -count=1 -run 'TestParallelTick|TestEventsDeterministicAcrossWorkers' ./internal/sched/ ./internal/service/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestParallelTick|TestEventsDeterministicAcrossWorkers' ./internal/sched/ ./internal/service/
	# Cluster-mode sim invariant matrix: the sharded tier's routing-level
	# invariants (placement conservation, no lost work across aborts,
	# admission accounting) and per-shard byte-identical determinism at
	# workers 1/2/4 must hold on one core and on several. TestFoldSim adds the
	# folding matrices: fold-on runs must stay byte-identical across worker
	# counts and — stripped of fold annotations — identical to fold-off runs,
	# with I11/C6 cost-plane conservation exact.
	# TestSimEstimator adds the estimate-plane matrices (I13): stage-mode runs
	# byte-identical to the pre-refactor default, ensemble-mode runs clean and
	# deterministic across worker counts.
	GOMAXPROCS=1 $(GO) test -race -count=1 -run 'TestClusterSim|TestFoldSim|TestSimEstimator|TestSimEnsembleMode' ./internal/sim/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestClusterSim|TestFoldSim|TestSimEstimator|TestSimEnsembleMode' ./internal/sim/
	$(MAKE) cover-check
	$(MAKE) bench-check
	$(MAKE) calibration-smoke
	$(MAKE) load-smoke
	$(MAKE) fuzz-smoke

# cover prints the per-package coverage table and the repo-wide total.
cover:
	$(GO) test -count=1 -cover ./internal/...
	@$(GO) test -count=1 -coverprofile=$(COVER_PROFILE) ./internal/... > /dev/null
	@$(GO) tool cover -func=$(COVER_PROFILE) | tail -1

# cover-check is the ratchet: total statement coverage across ./internal/...
# must not drop below the floor committed in COVERAGE_BASELINE. Raise the
# floor when coverage durably improves; never lower it to make ci pass.
cover-check:
	@$(GO) test -count=1 -coverprofile=$(COVER_PROFILE) ./internal/... > /dev/null
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	floor=$$(cat COVERAGE_BASELINE); \
	echo "coverage: $$total% of statements (floor $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t+0 < f+0) }' || \
		{ echo "coverage $$total% fell below the committed baseline $$floor%"; exit 1; }

# bench-check is the allocation ratchet: short BenchmarkParallelTick and
# BenchmarkSharedScan runs' allocs/op must not exceed the figures committed in
# BENCH_tickpath.json and BENCH_sharedscan.json (currently 0 across the board —
# the zero-alloc steady-state tick, solo and folded). Timings are
# machine-dependent and not compared; allocation counts are deterministic,
# so even a -benchtime 10x run measures them exactly. SHORT=1 skips it.
bench-check:
ifeq ($(SHORT),1)
	@echo "SHORT=1: skipping bench-check"
else
	@$(GO) test -run '^$$' -bench ParallelTick -benchtime 10x -benchmem ./internal/sched/ > bench_live.txt || { cat bench_live.txt; rm -f bench_live.txt; exit 1; }
	@awk ' \
		FILENAME == "BENCH_tickpath.json" { \
			if ($$1 == "\"name\":") { name = $$2; gsub(/[",]/, "", name) } \
			if ($$1 == "\"allocs_per_op\":") { allocs = $$2; gsub(/,/, "", allocs); base[name] = allocs + 0 } \
			next \
		} \
		/^BenchmarkParallelTick\// && / allocs\/op/ { \
			name = $$1; sub(/-[0-9]+$$/, "", name); \
			live = $$(NF-1) + 0; \
			if (name in base) { \
				printf "%-42s %3d allocs/op (baseline %d)\n", name, live, base[name]; \
				if (live > base[name]) { bad = 1 } \
			} \
		} \
		END { if (bad) { print "bench-check: allocs/op regressed above BENCH_tickpath.json"; exit 1 } } \
	' BENCH_tickpath.json bench_live.txt; status=$$?; rm -f bench_live.txt; exit $$status
	@$(GO) test -run '^$$' -bench SharedScan -benchtime 10x -benchmem ./internal/sched/ > bench_live.txt || { cat bench_live.txt; rm -f bench_live.txt; exit 1; }
	@awk ' \
		FILENAME == "BENCH_sharedscan.json" { \
			if ($$1 == "\"name\":") { name = $$2; gsub(/[",]/, "", name) } \
			if ($$1 == "\"allocs_per_op\":") { allocs = $$2; gsub(/,/, "", allocs); base[name] = allocs + 0 } \
			next \
		} \
		/^BenchmarkSharedScan\// && / allocs\/op/ { \
			name = $$1; sub(/-[0-9]+$$/, "", name); \
			live = $$(NF-1) + 0; \
			if (name in base) { \
				printf "%-42s %3d allocs/op (baseline %d)\n", name, live, base[name]; \
				if (live > base[name]) { bad = 1 } \
			} \
		} \
		END { if (bad) { print "bench-check: allocs/op regressed above BENCH_sharedscan.json"; exit 1 } } \
	' BENCH_sharedscan.json bench_live.txt; status=$$?; rm -f bench_live.txt; exit $$status
endif

# calibration-smoke drives the ensemble estimate plane end to end through the
# real CLI: the seven-scenario calibration battery must run clean on a reduced
# dataset. The 80% coverage acceptance floor itself is asserted by
# TestRunCalibrationCoverage (under `race` above); this smoke keeps the
# mqpi-bench flag/figure wiring from rotting. SHORT=1 skips it.
calibration-smoke:
ifeq ($(SHORT),1)
	@echo "SHORT=1: skipping calibration smoke"
else
	$(GO) run ./cmd/mqpi-bench -exp calibration -lineitem 30000 -seed 5
endif

# load-smoke drives the YCSB-style swarm end to end through the real CLI under
# the race detector: a seconds-scale closed-loop swarm against the in-process
# single-engine service and a second against the 2-shard least-loaded front
# door, each with -selfcheck asserting non-empty histograms, ordered
# percentiles, completions, and zero errors. SHORT=1 skips it.
load-smoke:
ifeq ($(SHORT),1)
	@echo "SHORT=1: skipping load smoke"
else
	$(GO) run -race ./cmd/mqpi-load -clients 32 -ops 96 -think 1ms -poll 1ms \
		-duration 30s -timescale 800 -tick 1ms -selfcheck
	$(GO) run -race ./cmd/mqpi-load -clients 32 -ops 64 -think 1ms -poll 1ms \
		-duration 30s -timescale 800 -tick 1ms \
		-shards 2 -routing least-loaded -admit-rate 1e6 -admit-burst 1e6 -selfcheck
endif

# bench-load regenerates the committed load baseline: the same >=1000-client
# closed-loop swarm against the single-engine service and the 2-shard
# least-loaded cluster with queue-on-full admission. Wall-clock latencies are
# host-dependent; regenerate on the committing host and compare shapes, not
# absolute times.
bench-load:
	$(GO) run ./cmd/mqpi-load -bench -out BENCH_load.json

# fuzz-smoke gives each native fuzz target a short budget on every ci run, so
# the harnesses can't rot and the checked-in corpora keep replaying. SHORT=1
# skips it (the corpora still run as plain tests under `race` above).
fuzz-smoke:
ifeq ($(SHORT),1)
	@echo "SHORT=1: skipping fuzz smoke"
else
	$(GO) test -run '^$$' -fuzz FuzzSim -fuzztime 10s ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/engine/sql
endif
