GO ?= go

.PHONY: build test bench race vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# ci is the gate: static checks, a clean build, and the full suite under the
# race detector (load-bearing now that the experiment harness spawns worker
# goroutines).
ci: vet build race
