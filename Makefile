GO ?= go

.PHONY: build test bench bench-all race vet ci serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench tracks the poll-path baseline committed in BENCH_pollpath.json and
# the tick-path baseline (MPL 1/4/16 × worker counts) in BENCH_tickpath.json.
bench:
	$(GO) test -run '^$$' -bench ConcurrentPoll -benchmem ./internal/service/
	$(GO) test -run '^$$' -bench ParallelTick -benchmem ./internal/sched/

bench-all:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

serve:
	$(GO) run ./cmd/mqpi-serve -demo

# ci is the gate: static checks, a clean build, and the full suite under the
# race detector (load-bearing now that the experiment harness spawns worker
# goroutines and the serving layer runs a live ticker against concurrent
# clients). The service/sched/serve packages are named explicitly so a future
# split of `race` cannot silently drop them from under the detector.
ci: vet build race
	$(GO) test -race ./internal/service/... ./internal/sched/... ./cmd/mqpi-serve/...
	# Three-phase tick determinism: the differential + stress suite must hold
	# on one core and on several, since goroutine interleaving (and therefore
	# any illegal cross-runner ordering dependence) differs between the two.
	# -count=1: GOMAXPROCS is not in the test cache key, so without it the
	# second run would silently replay the first run's cached verdict.
	GOMAXPROCS=1 $(GO) test -race -count=1 -run 'TestParallelTick|TestEventsDeterministicAcrossWorkers' ./internal/sched/ ./internal/service/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestParallelTick|TestEventsDeterministicAcrossWorkers' ./internal/sched/ ./internal/service/
