// Speed-up advisor: the victim-selection problems of §3.1 and §3.2. Given a
// set of running queries, which one should be blocked to speed up a target
// query — and does the advice actually pay off? This example takes the
// advice, blocks the victim for real, and compares against a replay without
// intervention.
//
//	go run ./examples/speedup
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mqpi/internal/sched"
	"mqpi/internal/wm"
	"mqpi/internal/workload"
)

// scenario builds the same five-query workload every time (deterministic),
// returning the server and the queries.
func scenario() (*sched.Server, []*sched.Query) {
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: 30000, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	srv := sched.New(sched.Config{RateC: 50, Quantum: 0.5})
	sizes := []int{8, 25, 12, 30, 5}
	var queries []*sched.Query
	for i, n := range sizes {
		if err := ds.CreatePartTable(i+1, n); err != nil {
			log.Fatal(err)
		}
		runner, err := ds.DB.Prepare(workload.QuerySQL(i + 1))
		if err != nil {
			log.Fatal(err)
		}
		runner.CollectRows = false
		if _, _, err := runner.Step(rng.Float64() * 0.5 * runner.Plan().EstCost()); err != nil {
			log.Fatal(err)
		}
		q := srv.NewQuery(fmt.Sprintf("Q%d(N=%d)", i+1, n), "", 0, runner)
		queries = append(queries, q)
		srv.Submit(q)
	}
	return srv, queries
}

func main() {
	// Baseline: nobody is blocked.
	srv, queries := scenario()
	target := queries[2] // speed up Q3
	targetID := target.ID
	srv.RunUntilIdle(1e9)
	baseline := target.FinishTime
	fmt.Printf("target %s finishes at %.1fs with no intervention\n\n", target.Label, baseline)

	// Advice from the stage model (§3.1).
	srv, queries = scenario()
	target = queries[2]
	states := srv.StateRunning()
	victims, err := wm.SpeedUpSingle(states, srv.RateC(), target.ID, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("victim candidates for speeding up the target (§3.1):")
	for _, v := range victims {
		q, _ := srv.Lookup(v.ID)
		fmt.Printf("  block %-10s -> predicted %5.1fs faster\n", q.Label, v.Benefit)
	}

	// Take the advice: block the best victim and measure.
	best := victims[0]
	if err := srv.Block(best.ID); err != nil {
		log.Fatal(err)
	}
	srv.RunUntilIdle(1e9)
	blocked, _ := srv.Lookup(best.ID)
	fmt.Printf("\nafter blocking %s, the target finished at %.1fs (%.1fs faster; predicted %.1fs)\n",
		blocked.Label, target.FinishTime, baseline-target.FinishTime, best.Benefit)

	// And the multiple-query variant (§3.2): which victim helps everyone?
	srv, _ = scenario()
	v, err := wm.SpeedUpOthers(srv.StateRunning(), srv.RateC())
	if err != nil {
		log.Fatal(err)
	}
	q, _ := srv.Lookup(v.ID)
	fmt.Printf("\nto speed up all other queries (§3.2): block %s (total response time improves %.1fs)\n",
		q.Label, v.Benefit)
	_ = targetID
}
