// Maintenance advisor: the scheduled-maintenance problem of §3.3. Ten
// queries are running; maintenance is scheduled t seconds from now. Which
// queries should be aborted right away so the rest can finish in time, and
// how much work is lost?
//
//	go run ./examples/maintenance
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"mqpi/internal/core"
	"mqpi/internal/engine"
	"mqpi/internal/sched"
	"mqpi/internal/wm"
	"mqpi/internal/workload"
)

func main() {
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: 30000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	zipf, err := workload.NewZipf(1.5, 20)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	srv := sched.New(sched.Config{RateC: 50, Quantum: 0.5})

	// Ten queries, already at random points of their execution (the mix a
	// DBA would face at an arbitrary moment).
	for i := 1; i <= 10; i++ {
		if err := ds.CreatePartTable(i, zipf.Sample(rng)); err != nil {
			log.Fatal(err)
		}
		runner, err := ds.DB.Prepare(workload.QuerySQL(i))
		if err != nil {
			log.Fatal(err)
		}
		runner.CollectRows = false
		if _, _, err := runner.Step(rng.Float64() * 0.8 * runner.Plan().EstCost()); err != nil {
			log.Fatal(err)
		}
		srv.Submit(srv.NewQuery(fmt.Sprintf("Q%d", i), workload.QuerySQL(i), 0, runner))
	}

	states := srv.StateRunning()
	for i := range states {
		states[i].Done = mustLookup(srv, states[i].ID).Runner.WorkDone()
	}
	quiescent := srv.QuiescentEstimate()
	fmt.Printf("10 queries running; estimated system quiescent time: %.0fs\n\n", quiescent)
	fmt.Println("query   done(U)   remaining(U)   est. finish(s)")
	finish := core.MultiQueryRemainingTimes(states, srv.RateC())
	for _, st := range states {
		fmt.Printf("%-6s %9.0f %14.0f %16.1f\n",
			mustLookup(srv, st.ID).Label, st.Done, st.Remaining, finish[st.ID])
	}

	for _, frac := range []float64{0.25, 0.5, 0.75} {
		deadline := frac * quiescent
		plan, err := wm.PlanMaintenance(states, srv.RateC(), deadline, wm.Case2TotalCost)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := wm.PlanMaintenanceExact(states, srv.RateC(), deadline, wm.Case2TotalCost)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmaintenance in %.0fs (%.0f%% of quiescent time):\n", deadline, frac*100)
		fmt.Printf("  greedy (§3.3): abort %s -> %.0f U unfinished, rest done by %.0fs\n",
			labels(srv, plan.Abort), plan.Lost, plan.Quiescent)
		fmt.Printf("  exact optimum: abort %s -> %.0f U unfinished, rest done by %.0fs\n",
			labels(srv, exact.Abort), exact.Lost, exact.Quiescent)
	}

	// Act 2: execute the 50% plan end-to-end — abort, drain, snapshot the
	// database for the maintenance window, "restart", and rerun the aborted
	// queries against the reloaded database.
	deadline := 0.5 * quiescent
	plan, err := wm.PlanMaintenance(states, srv.RateC(), deadline, wm.Case2TotalCost)
	if err != nil {
		log.Fatal(err)
	}
	var rerun []string
	for _, id := range plan.Abort {
		rerun = append(rerun, mustLookup(srv, id).Label)
		if err := srv.Abort(id); err != nil {
			log.Fatal(err)
		}
	}
	start := srv.Now()
	srv.RunUntilIdle(1e9)
	fmt.Printf("\nexecuted the 50%% plan: aborted %s; survivors drained in %.0fs (deadline %.0fs)\n",
		labels(srv, plan.Abort), srv.Now()-start, deadline)

	var snapshot bytes.Buffer
	if err := ds.DB.Save(&snapshot); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maintenance snapshot: %d KiB; performing maintenance and restarting...\n", snapshot.Len()/1024)

	db2, err := engine.Load(&snapshot)
	if err != nil {
		log.Fatal(err)
	}
	srv2 := sched.New(sched.Config{RateC: 50, Quantum: 0.5})
	for i, id := range plan.Abort {
		orig := mustLookup(srv, id)
		runner, err := db2.Prepare(orig.SQL)
		if err != nil {
			log.Fatal(err)
		}
		runner.CollectRows = false
		srv2.Submit(srv2.NewQuery(fmt.Sprintf("rerun-%d", i+1), orig.SQL, 0, runner))
	}
	srv2.RunUntilIdle(1e9)
	fmt.Printf("after restart, the %d aborted queries (%s) reran to completion in %.0fs\n",
		len(plan.Abort), joinStrings(rerun), srv2.Now())
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

func mustLookup(srv *sched.Server, id int) *sched.Query {
	q, ok := srv.Lookup(id)
	if !ok {
		log.Fatalf("query %d not found", id)
	}
	return q
}

func labels(srv *sched.Server, ids []int) string {
	if len(ids) == 0 {
		return "nothing"
	}
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ","
		}
		out += mustLookup(srv, id).Label
	}
	return out
}
