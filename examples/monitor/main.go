// Monitor: a live multi-query progress dashboard. Eight queries of mixed
// sizes run concurrently while new ones arrive; every ten virtual seconds
// the dashboard prints each query's progress bar and the multi-query PI's
// predicted finish time (queue- and future-aware).
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"mqpi/internal/core"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

func main() {
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: 30000, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}
	zipf, err := workload.NewZipf(1.4, 20)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	srv := sched.New(sched.Config{RateC: 60, Quantum: 0.5, MPL: 6})

	nextIdx := 1
	submit := func() {
		n := zipf.Sample(rng)
		if err := ds.CreatePartTable(nextIdx, n); err != nil {
			log.Fatal(err)
		}
		runner, err := ds.DB.Prepare(workload.QuerySQL(nextIdx))
		if err != nil {
			log.Fatal(err)
		}
		runner.CollectRows = false
		srv.Submit(srv.NewQuery(fmt.Sprintf("Q%d(N=%d)", nextIdx, n), "", 0, runner))
		nextIdx++
	}
	for i := 0; i < 8; i++ {
		submit()
	}

	// Poisson arrivals for the first 60 virtual seconds.
	poisson := workload.Poisson{Lambda: 0.05}
	nextArrival := poisson.NextInterarrival(rng)

	for srv.Busy() {
		if srv.Now() >= nextArrival && srv.Now() < 60 {
			submit()
			nextArrival += poisson.NextInterarrival(rng)
		}
		if int(srv.Now())%10 == 0 && srv.Now() == float64(int(srv.Now())) {
			render(srv)
		}
		srv.Tick()
	}
	fmt.Printf("\nall queries finished at t=%.0fs\n", srv.Now())
}

func render(srv *sched.Server) {
	fmt.Printf("\n== t = %3.0fs  (running %d, queued %d) ==\n",
		srv.Now(), len(srv.Running()), len(srv.Queued()))
	finish := core.MultiQueryWithQueue(srv.StateRunning(), srv.StateQueued(), srv.MPL(), srv.RateC())
	for _, q := range srv.Running() {
		bar := progressBar(q.Runner.Progress(), 24)
		eta := finish[q.ID]
		fmt.Printf("  %-10s %s %5.1f%%  eta t=%5.0fs\n",
			q.Label, bar, 100*q.Runner.Progress(), srv.Now()+eta)
	}
	for _, q := range srv.Queued() {
		fmt.Printf("  %-10s [ queued ]              eta t=%5.0fs\n", q.Label, srv.Now()+finish[q.ID])
	}
}

func progressBar(f float64, width int) string {
	filled := int(f * float64(width))
	if filled > width {
		filled = width
	}
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) + "]"
}
