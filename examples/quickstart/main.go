// Quickstart: run two concurrent SQL queries under the multi-query
// scheduler and watch the single-query and multi-query progress indicators
// disagree — the core of the paper in ~80 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mqpi/internal/core"
	"mqpi/internal/sched"
	"mqpi/internal/workload"
)

func main() {
	// A scaled-down Table 1: lineitem plus two part tables of very
	// different sizes.
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: 30000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.CreatePartTable(1, 40); err != nil { // big query
		log.Fatal(err)
	}
	if err := ds.CreatePartTable(2, 5); err != nil { // small query
		log.Fatal(err)
	}

	// The simulated RDBMS processes C = 100 U/s, shared fairly.
	srv := sched.New(sched.Config{RateC: 100, Quantum: 0.5})
	var queries []*sched.Query
	for i := 1; i <= 2; i++ {
		sqlText := workload.QuerySQL(i)
		runner, err := ds.DB.Prepare(sqlText)
		if err != nil {
			log.Fatal(err)
		}
		runner.CollectRows = false
		q := srv.NewQuery(fmt.Sprintf("Q%d", i), sqlText, 0, runner)
		queries = append(queries, q)
		srv.Submit(q)
	}
	big := queries[0]

	fmt.Println("time   done%   single-query ETA   multi-query ETA")
	for srv.Busy() {
		if big.Status == sched.StatusRunning {
			single := core.SingleQueryRemainingTime(big.Runner.EstRemaining(), speedOf(srv, big))
			multi := core.MultiQueryRemainingTimes(srv.StateRunning(), srv.RateC())[big.ID]
			fmt.Printf("%4.0fs  %4.0f%%   %13.1fs   %12.1fs\n",
				srv.Now(), 100*big.Runner.Progress(), single, multi)
		}
		for i := 0; i < 20; i++ { // 10 virtual seconds between reports
			srv.Tick()
		}
	}
	fmt.Printf("\nQ1 actually finished at %.1fs; Q2 at %.1fs.\n", big.FinishTime, queries[1].FinishTime)
	fmt.Println("While Q2 was running, the single-query PI assumed Q1's current (halved)")
	fmt.Println("speed would persist; the multi-query PI predicted Q2's completion and the")
	fmt.Println("speed-up that follows — so its ETA was accurate from the start.")
}

// speedOf is the single-query PI's observed speed, with the fair-share
// fallback before enough samples exist.
func speedOf(srv *sched.Server, q *sched.Query) float64 {
	if s := q.ObservedSpeed(); s > 0 {
		return s
	}
	n := 0
	for _, r := range srv.Running() {
		if r.Status == sched.StatusRunning {
			n++
		}
	}
	if n == 0 {
		return srv.RateC()
	}
	return srv.RateC() / float64(n)
}
