// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5), plus micro-benchmarks of the core algorithms and
// the ablations called out in DESIGN.md.
//
// Each figure benchmark runs the corresponding experiment end-to-end at a
// scaled-down configuration and reports headline shape metrics via b.Report-
// Metric, so `go test -bench=.` regenerates every result in one command.
// cmd/mqpi-bench prints the full series at paper scale.
package mqpi_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"mqpi/internal/core"
	"mqpi/internal/experiments"
	"mqpi/internal/wm"
	"mqpi/internal/workload"
)

// benchData keeps the figure benchmarks fast; mqpi-bench uses the full
// defaults.
var benchData = workload.DataConfig{LineitemRows: 30000, Seed: 1}

func BenchmarkTable1Dataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDataset(experiments.DatasetConfig{Seed: 1, Data: benchData})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Rows[0].Tuples), "lineitem-rows")
			b.ReportMetric(res.Rows[1].AvgMatch, "avg-matches")
		}
	}
}

func BenchmarkFigure3MCQEstimates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMCQ(experiments.MCQConfig{Seed: 1, MaxN: 60, Data: benchData})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ErrStartSingle, "single-err-t0")
			b.ReportMetric(res.ErrStartMulti, "multi-err-t0")
		}
	}
}

func BenchmarkFigure4MCQSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMCQ(experiments.MCQConfig{Seed: 2, MaxN: 60, Data: benchData})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.SpeedRatio, "speed-growth")
		}
	}
}

func BenchmarkFigure5NAQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNAQ(experiments.NAQConfig{Seed: 1, Data: benchData})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.ErrStartSingle, "single-err-t0")
			b.ReportMetric(res.ErrStartNoQueue, "noqueue-err-t0")
			b.ReportMetric(res.ErrStartQueue, "queue-err-t0")
		}
	}
}

func scqBenchConfig(seed int64) experiments.SCQConfig {
	return experiments.SCQConfig{
		Seed:    seed,
		Runs:    5,
		Lambdas: []float64{0, 0.05, 0.1},
		Data:    benchData,
	}
}

func BenchmarkFigure6SCQLastQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSCQ(scqBenchConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Fig6.Series[0].YAt(0), "single-err-l0")
			b.ReportMetric(res.Fig6.Series[1].YAt(0), "multi-err-l0")
		}
	}
}

func BenchmarkFigure7SCQAverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSCQ(scqBenchConfig(2))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Fig7.Series[0].YAt(0.05), "single-err-l05")
			b.ReportMetric(res.Fig7.Series[1].YAt(0.05), "multi-err-l05")
		}
	}
}

func lambdaErrBenchConfig(seed int64) experiments.SCQConfig {
	return experiments.SCQConfig{
		Seed:         seed,
		Runs:         5,
		FixedLambda:  0.03,
		LambdaPrimes: []float64{0, 0.03, 0.1, 0.2},
		Data:         benchData,
	}
}

func BenchmarkFigure8LambdaErrLastQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSCQLambdaErr(lambdaErrBenchConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Fig8.Series[1].YAt(0.03), "multi-err-true-lambda")
			b.ReportMetric(res.Fig8.Series[1].YAt(0.2), "multi-err-wrong-lambda")
		}
	}
}

func BenchmarkFigure9LambdaErrAverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSCQLambdaErr(lambdaErrBenchConfig(2))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Fig9.Series[0].YAt(0.03), "single-err")
			b.ReportMetric(res.Fig9.Series[1].YAt(0.03), "multi-err-true-lambda")
		}
	}
}

func BenchmarkFigure10LambdaErrTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSCQTrajectory(experiments.SCQConfig{Seed: 1, Data: benchData}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.FocusFinish, "focus-finish-s")
		}
	}
}

func BenchmarkFigure11Maintenance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMaintenance(experiments.MaintenanceConfig{
			Seed: 1, Runs: 3, WarmupFinishes: 15, Data: benchData,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.SingleAtTFinish, "single-UW-at-tfinish")
			b.ReportMetric(res.MultiVsSingle, "multi-gain-vs-single")
			b.ReportMetric(res.MultiVsLimit, "multi-excess-vs-limit")
		}
	}
}

// BenchmarkParallelSCQSweep runs the SCQ λ-sweep sequentially and at full
// parallelism in each iteration and reports the wall-clock speedup of the
// worker pool (figures are byte-identical either way; see
// internal/experiments/parallel_test.go).
func BenchmarkParallelSCQSweep(b *testing.B) {
	cfg := scqBenchConfig(1)
	for i := 0; i < b.N; i++ {
		cfg.Parallel = 1
		t0 := time.Now()
		if _, err := experiments.RunSCQ(cfg); err != nil {
			b.Fatal(err)
		}
		seq := time.Since(t0)
		cfg.Parallel = 0 // GOMAXPROCS
		t0 = time.Now()
		if _, err := experiments.RunSCQ(cfg); err != nil {
			b.Fatal(err)
		}
		par := time.Since(t0)
		if i == 0 {
			b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
		}
	}
}

// --- ablations (DESIGN.md: refined vs optimizer-only remaining costs) ---

// BenchmarkAblationRefinedEstimate runs the MCQ experiment with refined
// remaining-cost estimates (the default) and reports the multi-query PI's
// time-0 error; compare with BenchmarkAblationOptimizerOnlyEstimate.
func BenchmarkAblationRefinedEstimate(b *testing.B) {
	benchAblation(b, false)
}

// BenchmarkAblationOptimizerOnlyEstimate disables progress-based refinement,
// feeding the PI raw optimizer-remaining costs. On this workload the
// optimizer estimates are good, so the gap is modest — the refinement
// matters when cardinality estimates go wrong (see the skewed-stats test in
// internal/experiments).
func BenchmarkAblationOptimizerOnlyEstimate(b *testing.B) {
	benchAblation(b, true)
}

func benchAblation(b *testing.B, optimizerOnly bool) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMCQAblation(experiments.MCQConfig{Seed: 3, MaxN: 60, Data: benchData}, optimizerOnly)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanMultiErr, "mean-multi-err")
		}
	}
}

// --- micro-benchmarks of the core algorithms ---

func randomStates(n int, seed int64) []core.QueryState {
	rng := rand.New(rand.NewSource(seed))
	states := make([]core.QueryState, n)
	for i := range states {
		states[i] = core.QueryState{
			ID:        i + 1,
			Remaining: rng.Float64() * 1e6,
			Weight:    1 + rng.Float64()*3,
			Done:      rng.Float64() * 1e6,
		}
	}
	return states
}

func BenchmarkComputeProfile100(b *testing.B)   { benchProfile(b, 100) }
func BenchmarkComputeProfile10000(b *testing.B) { benchProfile(b, 10000) }

func benchProfile(b *testing.B, n int) {
	states := randomStates(n, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ComputeProfile(states, 1000)
	}
}

func BenchmarkSimulateProfileWithArrivals(b *testing.B) {
	states := randomStates(50, 2)
	am := core.ArrivalModel{Lambda: 0.01, AvgCost: 1e5, AvgWeight: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SimulateProfile(states, 1000, core.SimOptions{Arrivals: &am})
	}
}

func BenchmarkSpeedUpSingle(b *testing.B) {
	states := randomStates(1000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wm.SpeedUpSingle(states, 1000, 500, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeedUpSingleEqualPriorityFastPath(b *testing.B) {
	states := randomStates(1000, 4)
	for i := range states {
		states[i].Weight = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wm.SpeedUpSingleEqualPriority(states, 500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanMaintenanceGreedy(b *testing.B) {
	states := randomStates(1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wm.PlanMaintenance(states, 1000, 100, wm.Case2TotalCost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanMaintenanceExact20(b *testing.B) {
	states := randomStates(20, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wm.PlanMaintenanceExact(states, 1000, 100, wm.Case2TotalCost); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCorrelatedQuery measures raw engine throughput on the
// paper's query shape.
func BenchmarkEngineCorrelatedQuery(b *testing.B) {
	ds, err := workload.BuildDataset(benchData)
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.CreatePartTable(1, 20); err != nil {
		b.Fatal(err)
	}
	src := workload.QuerySQL(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ds.DB.Query(src); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension experiments (beyond the paper's figures) ---

// BenchmarkExtSpeedupPolicies compares §3.1 victim selection against the
// heaviest-consumer and random heuristics on the paper's motivating trap
// (the heavy consumer is about to finish).
func BenchmarkExtSpeedupPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSpeedup(experiments.SpeedupConfig{Seed: 1, Runs: 4, Data: benchData})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanSavings[0], "multiPI-saving-s")
			b.ReportMetric(res.MeanSavings[1], "heaviest-saving-s")
			b.ReportMetric(res.MeanSavings[2], "random-saving-s")
		}
	}
}

// BenchmarkExtWeightedPriorities validates Assumption 3 end-to-end: the
// measured high/low speed ratio against the weight ratio of 3, and the
// weighted stage model's estimate accuracy.
func BenchmarkExtWeightedPriorities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPriority(experiments.PriorityConfig{Seed: 1, Data: benchData})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.SpeedRatio, "speed-ratio")
			b.ReportMetric(res.ErrT0Multi, "multi-err")
			b.ReportMetric(res.ErrT0Single, "single-err")
		}
	}
}

// BenchmarkExtMPLSweep quantifies §2.3 across queue depths: the queue-aware
// estimator's error stays flat while the queue-blind one grows as the MPL
// shrinks.
func BenchmarkExtMPLSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMPLSweep(experiments.MPLSweepConfig{Seed: 1, Runs: 2, Data: benchData})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Fig.Series[1].YAt(2), "blind-err-mpl2")
			b.ReportMetric(res.Fig.Series[2].YAt(2), "aware-err-mpl2")
		}
	}
}
