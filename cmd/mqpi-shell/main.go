// Command mqpi-shell is an interactive SQL shell over the engine, with the
// multi-query progress machinery visible: every query reports its optimizer
// cost estimate and the work it actually consumed, and EXPLAIN-style plan
// output is available via \explain.
//
// Commands:
//
//	\help                 show help
//	\tables               list tables
//	\explain SELECT ...   show the physical plan with costs (in U's)
//	\demo                 load a scaled-down Table 1 dataset (lineitem + part_1..3)
//	\quit                 exit
//
// Everything else is parsed as SQL (CREATE TABLE / CREATE INDEX / INSERT /
// SELECT). Statements may span lines; terminate them with a semicolon.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"mqpi/internal/engine"
	"mqpi/internal/engine/plan"
	"mqpi/internal/workload"
)

func main() {
	db := engine.Open()
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("mqpi-shell — SQL engine with work-unit accounting. \\help for help.")
	var buf strings.Builder
	prompt := "mqpi> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if buf.Len() == 0 && strings.HasPrefix(line, "\\") {
			db = command(db, line)
			if db == nil {
				return
			}
			continue
		}
		if line == "" {
			continue
		}
		buf.WriteString(line)
		buf.WriteByte(' ')
		if !strings.HasSuffix(line, ";") {
			prompt = "  ... "
			continue
		}
		stmt := strings.TrimSpace(buf.String())
		buf.Reset()
		prompt = "mqpi> "
		runStatement(db, stmt)
	}
}

func command(db *engine.DB, line string) *engine.DB {
	fields := strings.SplitN(line, " ", 2)
	switch fields[0] {
	case "\\quit", "\\q":
		return nil
	case "\\help", "\\h":
		fmt.Println(`commands:
  \tables               list tables with row counts
  \explain SELECT ...   show the physical plan and optimizer costs
  \demo                 load a scaled-down paper dataset (lineitem, part_1..3)
  \save FILE            write a binary snapshot of the database
  \load FILE            replace the session database with a snapshot
  \wal FILE             start write-ahead logging all mutations to FILE
  \recover SNAP WAL     rebuild the session database from snapshot + WAL
  \quit                 exit
any other input is SQL, terminated by ';'`)
	case "\\wal":
		if len(fields) < 2 {
			fmt.Println("usage: \\wal FILE")
			break
		}
		f, err := os.Create(strings.TrimSpace(fields[1]))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		if _, err := db.AttachWAL(f); err != nil {
			fmt.Println("error:", err)
			f.Close()
			break
		}
		fmt.Println("logging mutations (file stays open until the shell exits)")
	case "\\recover":
		args := strings.Fields(line)
		if len(args) != 3 {
			fmt.Println("usage: \\recover SNAPSHOT WAL")
			break
		}
		snap, err := os.Open(args[1])
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		wal, err := os.Open(args[2])
		if err != nil {
			snap.Close()
			fmt.Println("error:", err)
			break
		}
		recovered, applied, err := engine.Recover(snap, wal)
		snap.Close()
		wal.Close()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("recovered (%d wal records applied)\n", applied)
		return recovered
	case "\\save":
		if len(fields) < 2 {
			fmt.Println("usage: \\save FILE")
			break
		}
		f, err := os.Create(strings.TrimSpace(fields[1]))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		err = db.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("saved")
	case "\\load":
		if len(fields) < 2 {
			fmt.Println("usage: \\load FILE")
			break
		}
		f, err := os.Open(strings.TrimSpace(fields[1]))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		loaded, err := engine.Load(f)
		f.Close()
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println("loaded")
		return loaded
	case "\\tables":
		cat := db.Catalog()
		for _, name := range cat.TableNames() {
			t, err := cat.Table(name)
			if err != nil {
				continue
			}
			fmt.Printf("  %-20s %8d rows  %6d pages\n", name, t.Rel.NumRows(), t.Rel.NumPages())
		}
	case "\\explain":
		if len(fields) < 2 {
			fmt.Println("usage: \\explain SELECT ...")
			break
		}
		src := strings.TrimSuffix(strings.TrimSpace(fields[1]), ";")
		p, err := db.Plan(src)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Print(plan.Explain(p))
	case "\\demo":
		ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: 30000, Seed: 1})
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		for i, n := range []int{50, 10, 20} {
			if err := ds.CreatePartTable(i+1, n); err != nil {
				fmt.Println("error:", err)
				return db
			}
		}
		fmt.Println("loaded lineitem (30000 rows) and part_1..part_3; try:")
		fmt.Println(" ", workload.QuerySQL(2)+";")
		return ds.DB
	default:
		fmt.Println("unknown command; \\help for help")
	}
	return db
}

func runStatement(db *engine.DB, stmt string) {
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") {
		rows, schema, work, err := db.Query(strings.TrimSuffix(stmt, ";"))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		// Header.
		names := make([]string, schema.Len())
		for i, c := range schema.Cols {
			names[i] = c.Name
		}
		fmt.Println(strings.Join(names, " | "))
		limit := len(rows)
		const maxShow = 50
		if limit > maxShow {
			limit = maxShow
		}
		for _, r := range rows[:limit] {
			parts := make([]string, len(r))
			for i, v := range r {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		if len(rows) > maxShow {
			fmt.Printf("... (%d more rows)\n", len(rows)-maxShow)
		}
		fmt.Printf("(%d rows, %.0f U of work)\n", len(rows), work)
		return
	}
	n, err := db.Exec(strings.TrimSuffix(stmt, ";"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if n > 0 {
		fmt.Printf("ok (%d rows)\n", n)
	} else {
		fmt.Println("ok")
	}
}
