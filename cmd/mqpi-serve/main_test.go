package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeDemoSession stands up the full binary wiring (demo dataset, live
// ticker) behind httptest and replays the README session: submit the paper's
// three queries, watch progress and multi-query estimates move in real time,
// and scrape /metrics.
func TestServeDemoSession(t *testing.T) {
	o, err := parseFlags([]string{
		"-demo", "-rows", "15000", "-rate", "50",
		"-timescale", "200", "-tick", "2ms", "-quantum", "0.25",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, handler, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", code, body)
	}

	// Submit Q1..Q3 over part_1..part_3.
	ids := make([]int, 0, 3)
	for i := 1; i <= 3; i++ {
		sql := fmt.Sprintf(
			"select * from part_%d p where p.retailprice*0.75 > "+
				"(select sum(l.extendedprice)/sum(l.quantity) from lineitem l where l.partkey = p.partkey)", i)
		payload, _ := json.Marshal(map[string]any{"sql": sql, "label": fmt.Sprintf("Q%d", i)})
		resp, err := http.Post(ts.URL+"/queries", "application/json", strings.NewReader(string(payload)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit Q%d: %d %s", i, resp.StatusCode, b)
		}
		var v struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}

	// The wall ticker must move virtual time and work on its own.
	type overview struct {
		Now      float64           `json:"now"`
		Running  []json.RawMessage `json:"running"`
		Finished []json.RawMessage `json:"finished"`
	}
	deadline := time.Now().Add(15 * time.Second)
	var ov overview
	for {
		_, b := get("/queries")
		if err := json.Unmarshal(b, &ov); err != nil {
			t.Fatalf("overview: %v in %s", err, b)
		}
		if len(ov.Finished) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queries did not finish; overview: %s", b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ov.Now <= 0 {
		t.Errorf("virtual clock did not advance: now=%g", ov.Now)
	}

	// Every query must report fraction 1 and a finish time.
	for _, id := range ids {
		_, b := get(fmt.Sprintf("/queries/%d", id))
		var v struct {
			Status   string  `json:"status"`
			Fraction float64 `json:"fraction"`
		}
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != "finished" || v.Fraction != 1 {
			t.Errorf("query %d: %s", id, b)
		}
	}

	code, b := get("/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"mqpi_queries_submitted_total 3",
		"mqpi_queries_finished_total 3",
		"# TYPE mqpi_tick_duration_seconds histogram",
		// Read-path observability must be wired through the binary: the
		// snapshot gauges only render when the Manager connects them, and
		// the polls above must flow through the epoch cache + histogram.
		"# TYPE mqpi_snapshot_epoch gauge",
		"mqpi_snapshot_age_seconds ",
		"# TYPE mqpi_poll_duration_seconds histogram",
		"mqpi_poll_estimate_cache_",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-rate", "0"},
		{"-quantum", "-1"},
		{"-timescale", "0"},
		{"-tick", "0s"},
		{"-shards", "0"},
		{"-routing", "random"},
		{"-admit-rate", "-1"},
		{"-admit-burst", "-2"},
		{"-estimator", "oracle"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// TestServeEnsembleSession stands up the binary with -estimator ensemble and
// checks the uncertainty plane end to end over HTTP: interval fields in
// /progress, mode + weights in /overview, band annotations in /diagram, and
// the estimator-weight and build-info gauges in /metrics.
func TestServeEnsembleSession(t *testing.T) {
	o, err := parseFlags([]string{
		"-demo", "-rows", "15000", "-rate", "50",
		"-timescale", "200", "-tick", "2ms", "-quantum", "0.25",
		"-estimator", "ensemble",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, handler, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	ids := make([]int, 0, 3)
	for i := 1; i <= 3; i++ {
		sql := fmt.Sprintf(
			"select * from part_%d p where p.retailprice*0.75 > "+
				"(select sum(l.extendedprice)/sum(l.quantity) from lineitem l where l.partkey = p.partkey)", i)
		payload, _ := json.Marshal(map[string]any{"sql": sql, "label": fmt.Sprintf("Q%d", i)})
		resp, err := http.Post(ts.URL+"/queries", "application/json", strings.NewReader(string(payload)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit Q%d: %d %s", i, resp.StatusCode, b)
		}
		var v struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}

	// While running, a query's view must carry a real band around the point.
	type view struct {
		Status  string   `json:"status"`
		Multi   *float64 `json:"multi_query_eta"`
		ETALow  *float64 `json:"eta_low"`
		ETAHigh *float64 `json:"eta_high"`
	}
	sawBand := false
	deadline := time.Now().Add(15 * time.Second)
	for !sawBand {
		if time.Now().After(deadline) {
			t.Fatal("never observed a running query with a band")
		}
		for _, id := range ids {
			_, b := get(fmt.Sprintf("/queries/%d", id))
			var v view
			if err := json.Unmarshal(b, &v); err != nil {
				t.Fatalf("progress: %v in %s", err, b)
			}
			if v.Status != "running" || v.Multi == nil || v.ETALow == nil || v.ETAHigh == nil {
				continue
			}
			if !(*v.ETALow <= *v.Multi && *v.Multi <= *v.ETAHigh) {
				t.Fatalf("band [%g,%g] misses point %g: %s", *v.ETALow, *v.ETAHigh, *v.Multi, b)
			}
			if *v.ETAHigh > *v.ETALow {
				sawBand = true
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	_, b := get("/queries")
	var ov struct {
		Estimator string             `json:"estimator"`
		Weights   map[string]float64 `json:"estimator_weights"`
		Finished  []json.RawMessage  `json:"finished"`
	}
	if err := json.Unmarshal(b, &ov); err != nil {
		t.Fatal(err)
	}
	if ov.Estimator != "ensemble" || len(ov.Weights) != 3 {
		t.Fatalf("overview estimator=%q weights=%v", ov.Estimator, ov.Weights)
	}

	for {
		_, b := get("/queries")
		if err := json.Unmarshal(b, &ov); err != nil {
			t.Fatal(err)
		}
		if len(ov.Finished) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queries did not finish; overview: %s", b)
		}
		time.Sleep(5 * time.Millisecond)
	}

	code, b := get("/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		`mqpi_estimator_weight{member="stage"}`,
		"mqpi_eta_band_finishes_total 3",
		`mqpi_build_info{estimator="ensemble",go_version=`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics missing %q in:\n%s", want, b)
		}
	}
}

// TestServeClusterSession stands up the sharded wiring (-shards/-routing/
// -admit-rate) and drives the front door: routed submissions, the merged
// /overview with per-shard epochs, and a 429 once the burst is spent.
func TestServeClusterSession(t *testing.T) {
	o, err := parseFlags([]string{
		"-demo", "-rows", "15000", "-rate", "50",
		"-timescale", "200", "-tick", "2ms", "-quantum", "0.25",
		// The refill rate is sub-microscopic on purpose: at -timescale 200
		// the live bucket refills rate*200 tokens per wall second, and the
		// 429 assertion below must not race a refill.
		"-shards", "2", "-routing", "least-loaded", "-admit-rate", "1e-9", "-admit-burst", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, handler, err := buildServer(o)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	ids := make([]int, 0, 3)
	for i := 1; i <= 3; i++ {
		sql := fmt.Sprintf(
			"select * from part_%d p where p.retailprice*0.75 > "+
				"(select sum(l.extendedprice)/sum(l.quantity) from lineitem l where l.partkey = p.partkey)", i)
		payload, _ := json.Marshal(map[string]any{"sql": sql, "label": fmt.Sprintf("Q%d", i), "session": "demo"})
		resp, err := http.Post(ts.URL+"/queries", "application/json", strings.NewReader(string(payload)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit Q%d: %d %s", i, resp.StatusCode, b)
		}
		var v struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}

	// The burst is 3: a fourth submission must bounce with 429.
	resp, err := http.Post(ts.URL+"/queries", "application/json",
		strings.NewReader(`{"sql":"select count(*) from part_1"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst+1 submit: %d %s", resp.StatusCode, b)
	}

	type overview struct {
		Shards []struct {
			Epoch uint64  `json:"epoch"`
			Now   float64 `json:"now"`
		} `json:"shards"`
		Finished []json.RawMessage `json:"finished"`
	}
	deadline := time.Now().Add(15 * time.Second)
	var ov overview
	for {
		resp, err := http.Get(ts.URL + "/overview")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(b, &ov); err != nil {
			t.Fatalf("overview: %v in %s", err, b)
		}
		if len(ov.Finished) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queries did not finish; overview: %s", b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(ov.Shards) != 2 {
		t.Fatalf("%d shard summaries, want 2", len(ov.Shards))
	}
	for i, s := range ov.Shards {
		if s.Epoch == 0 {
			t.Errorf("shard %d epoch not exposed", i)
		}
	}
	for _, id := range ids {
		resp, err := http.Get(fmt.Sprintf("%s/queries/%d", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != "finished" {
			t.Errorf("query %d: %s", id, b)
		}
	}

	// Cluster metrics and shard passthrough.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "mqpi_cluster_routed_total") ||
		!strings.Contains(string(b), "mqpi_cluster_admission_rejected_total 1") {
		t.Errorf("cluster metrics:\n%s", b)
	}
	resp, err = http.Get(ts.URL + "/shards/0/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "mqpi_queries_submitted_total") {
		t.Errorf("shard passthrough metrics:\n%s", b)
	}
}

// TestNewHTTPServerTimeouts pins the slow-client protection limits onto the
// assembled server: a load swarm (or a stalled peer) must never be able to
// hold a handler goroutine past the configured read/write windows.
func TestNewHTTPServerTimeouts(t *testing.T) {
	o, err := parseFlags([]string{"-read-timeout", "7s", "-write-timeout", "9s", "-idle-timeout", "11s"})
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer(o, http.NewServeMux())
	if srv.ReadTimeout != 7*time.Second || srv.WriteTimeout != 9*time.Second ||
		srv.IdleTimeout != 11*time.Second || srv.ReadHeaderTimeout == 0 {
		t.Fatalf("timeouts not applied: read=%s write=%s idle=%s header=%s",
			srv.ReadTimeout, srv.WriteTimeout, srv.IdleTimeout, srv.ReadHeaderTimeout)
	}
	for _, args := range [][]string{
		{"-read-timeout", "0s"},
		{"-write-timeout", "-1s"},
		{"-idle-timeout", "0s"},
		{"-shutdown-grace", "0s"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// drainCloser records when the serving tier was closed so the test can prove
// the drain-then-close ordering.
type drainCloser struct {
	mu     sync.Mutex
	closed time.Time
}

func (c *drainCloser) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = time.Now()
}

func (c *drainCloser) closedAt() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// TestGracefulShutdownDrainsInFlight is the SIGINT/SIGTERM teardown contract:
// a request already in a handler when the signal arrives must complete with
// its full response, the server must then exit cleanly, and the serving tier
// must only be closed after the drain (in-flight work never sees ErrClosed).
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	var handlerDone time.Time
	var doneMu sync.Mutex
	mux := http.NewServeMux()
	started := make(chan struct{})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		time.Sleep(300 * time.Millisecond)
		doneMu.Lock()
		handlerDone = time.Now()
		doneMu.Unlock()
		fmt.Fprint(w, "done")
	})

	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer(o, mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	closer := &drainCloser{}
	sigc := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() { errc <- serveUntilSignal(srv, ln, closer, sigc, 5*time.Second) }()

	respc := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			respc <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		respc <- fmt.Sprintf("%d %s", resp.StatusCode, b)
	}()

	// Signal only once the request is inside the handler.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}
	sigc <- syscall.SIGTERM

	if got := <-respc; got != "200 done" {
		t.Fatalf("in-flight request not drained: %q", got)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serveUntilSignal: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	doneMu.Lock()
	hd := handlerDone
	doneMu.Unlock()
	if ca := closer.closedAt(); ca.IsZero() || ca.Before(hd) {
		t.Fatalf("tier closed before the in-flight handler finished (closed=%v, handler=%v)", ca, hd)
	}
}
