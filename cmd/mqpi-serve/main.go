// Command mqpi-serve runs the live multi-query progress-indicator service:
// an HTTP/JSON front end over the virtual-time scheduler, with a wall-clock
// ticker advancing the simulation in real time (scaled by -timescale).
//
// Quick start:
//
//	mqpi-serve -addr :8080 -demo &
//	curl -s localhost:8080/queries -d '{"sql":"select * from part_1 ...","label":"q1"}'
//	curl -s localhost:8080/queries/1          # progress + both ETAs
//	curl -s localhost:8080/metrics            # Prometheus scrape
//
// See README.md for the full endpoint list and a worked session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mqpi/internal/cluster"
	"mqpi/internal/core"
	"mqpi/internal/engine"
	"mqpi/internal/sched"
	"mqpi/internal/service"
	"mqpi/internal/workload"
)

type options struct {
	addr          string
	rateC         float64
	mpl           int
	quantum       float64
	timeScale     float64
	tickEvery     time.Duration
	eventCap      int
	workers       int
	execDeadline  time.Duration
	demo          bool
	demoRows      int
	shards        int
	routing       string
	admitRate     float64
	admitBurst    float64
	admitQueue    bool
	fold          bool
	foldMinPages  int
	estimator     string
	readTimeout   time.Duration
	writeTimeout  time.Duration
	idleTimeout   time.Duration
	shutdownGrace time.Duration
}

// version identifies the build on the mqpi_build_info gauge; release builds
// override it via -ldflags "-X main.version=...".
var version = "dev"

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("mqpi-serve", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8080", "HTTP listen address")
	fs.Float64Var(&o.rateC, "rate", 10, "processing rate C, U per virtual second")
	fs.IntVar(&o.mpl, "mpl", 0, "multi-programming limit (0 = unlimited)")
	fs.Float64Var(&o.quantum, "quantum", 0.5, "scheduler quantum Δ, virtual seconds")
	fs.Float64Var(&o.timeScale, "timescale", 1, "virtual seconds per wall second")
	fs.DurationVar(&o.tickEvery, "tick", 50*time.Millisecond, "wall interval between scheduler advances")
	fs.IntVar(&o.eventCap, "events", 128, "events retained per query")
	fs.IntVar(&o.workers, "workers", runtime.NumCPU(), "execute-phase worker goroutines per tick (1 = serial; results identical at every setting)")
	fs.DurationVar(&o.execDeadline, "exec-deadline", 2*time.Second, "max wait for /exec DDL/DML to reach the owner before 409 (0 = wait forever)")
	fs.BoolVar(&o.demo, "demo", false, "preload the scaled-down Table 1 dataset (lineitem, part_1..3)")
	fs.IntVar(&o.demoRows, "rows", 30000, "lineitem rows for -demo")
	fs.IntVar(&o.shards, "shards", 1, "engine+scheduler shards behind the routing front door (1 = plain single-engine service)")
	fs.StringVar(&o.routing, "routing", "round-robin", "shard placement policy: "+strings.Join(cluster.RoutingPolicies(), "|"))
	fs.Float64Var(&o.admitRate, "admit-rate", 0, "token-bucket admission rate, queries per virtual second (0 = no admission control)")
	fs.Float64Var(&o.admitBurst, "admit-burst", 0, "token-bucket burst capacity (0 = max(admit-rate, 1))")
	fs.BoolVar(&o.admitQueue, "admit-queue", false, "queue over-rate submissions as delayed arrivals instead of rejecting with 429")
	fs.BoolVar(&o.fold, "fold", false, "fold same-table same-priority seq scans onto one shared cursor (charged progress is unchanged; only engine cost drops)")
	fs.IntVar(&o.foldMinPages, "fold-min-pages", 0, "smallest table (heap pages) eligible for scan folding (0 = default floor)")
	fs.StringVar(&o.estimator, "estimator", core.EstimatorStage, "estimate plane: "+strings.Join(core.EstimatorModes(), "|")+" (ensemble blends members online and reports eta_low/eta_high bands)")
	fs.DurationVar(&o.readTimeout, "read-timeout", 30*time.Second, "max time to read one request (slow-client guard; load swarms must not pin handlers)")
	fs.DurationVar(&o.writeTimeout, "write-timeout", 30*time.Second, "max time to write one response")
	fs.DurationVar(&o.idleTimeout, "idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	fs.DurationVar(&o.shutdownGrace, "shutdown-grace", 10*time.Second, "max wait for in-flight requests to drain on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.rateC <= 0 || o.quantum <= 0 || o.timeScale <= 0 || o.tickEvery <= 0 {
		return o, errors.New("rate, quantum, timescale, and tick must be positive")
	}
	if o.readTimeout <= 0 || o.writeTimeout <= 0 || o.idleTimeout <= 0 || o.shutdownGrace <= 0 {
		return o, errors.New("read-timeout, write-timeout, idle-timeout, and shutdown-grace must be positive")
	}
	if o.shards < 1 {
		return o, errors.New("shards must be at least 1")
	}
	if o.admitRate < 0 || o.admitBurst < 0 {
		return o, errors.New("admit-rate and admit-burst must be non-negative")
	}
	if o.foldMinPages < 0 {
		return o, errors.New("fold-min-pages must be non-negative")
	}
	if err := cluster.ValidRouting(o.routing); err != nil {
		return o, err
	}
	if err := core.ValidEstimator(o.estimator); err != nil {
		return o, err
	}
	return o, nil
}

// buildInfoLabels are the static labels on the mqpi_build_info gauge — enough
// to identify a deployed shard from its metrics page alone.
func buildInfoLabels(o options) map[string]string {
	return map[string]string{
		"version":    version,
		"go_version": runtime.Version(),
		"estimator":  o.estimator,
		"routing":    o.routing,
	}
}

// openDemo builds one engine, optionally preloaded with the demo dataset.
// Cluster shards call it once each; the fixed seed keeps replicas identical.
func openDemo(o options) (*engine.DB, error) {
	if !o.demo {
		return engine.Open(), nil
	}
	ds, err := workload.BuildDataset(workload.DataConfig{LineitemRows: o.demoRows, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("demo dataset: %w", err)
	}
	for i, n := range []int{50, 10, 20} {
		if err := ds.CreatePartTable(i+1, n); err != nil {
			return nil, fmt.Errorf("demo dataset: %w", err)
		}
	}
	return ds.DB, nil
}

// buildServer assembles the serving tier and its HTTP handler: a plain
// single-engine service by default, or the sharded cluster front door when
// -shards or -admit-rate ask for one. It is the testable core of main.
func buildServer(o options) (interface{ Close() }, http.Handler, error) {
	svcCfg := service.Config{
		Sched: sched.Config{
			RateC: o.rateC, MPL: o.mpl, Quantum: o.quantum, Workers: o.workers,
			Fold: o.fold, FoldMinPages: o.foldMinPages,
		},
		TickEvery:    o.tickEvery,
		TimeScale:    o.timeScale,
		EventCap:     o.eventCap,
		ExecDeadline: o.execDeadline,
		Estimator:    o.estimator,
	}
	info := buildInfoLabels(o)
	if o.shards > 1 || o.admitRate > 0 {
		var dbErr error
		c, err := cluster.New(cluster.Config{
			Shards:     o.shards,
			Routing:    o.routing,
			AdmitRate:  o.admitRate,
			AdmitBurst: o.admitBurst,
			AdmitQueue: o.admitQueue,
			Service:    svcCfg,
			OpenDB: func() *engine.DB {
				db, err := openDemo(o)
				if err != nil {
					dbErr = err
					return engine.Open()
				}
				return db
			},
		})
		if err != nil {
			return nil, nil, err
		}
		if dbErr != nil {
			c.Close()
			return nil, nil, dbErr
		}
		c.Metrics().SetBuildInfo(info)
		for i := 0; i < c.Shards(); i++ {
			c.Shard(i).Metrics().SetBuildInfo(info)
		}
		return c, cluster.NewHandler(c), nil
	}
	db, err := openDemo(o)
	if err != nil {
		return nil, nil, err
	}
	m := service.New(db, svcCfg)
	m.Metrics().SetBuildInfo(info)
	return m, service.NewHandler(m), nil
}

// newHTTPServer wraps the handler with the binary's protection limits: a
// slow or stalled client can hold a connection for at most the read/write
// timeouts, so a load swarm (or a misbehaving peer) cannot pin handler
// goroutines indefinitely.
func newHTTPServer(o options, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       o.readTimeout,
		WriteTimeout:      o.writeTimeout,
		IdleTimeout:       o.idleTimeout,
	}
}

// serveUntilSignal runs the server until it fails or a signal arrives, then
// shuts down gracefully: the listener closes, in-flight requests get up to
// grace to drain, and only then is the serving tier (scheduler ticker and
// owner goroutines) closed. ln may be nil, in which case the server listens
// on its own Addr. The signal channel is injected so tests can drive the
// shutdown path without killing the test process.
func serveUntilSignal(srv *http.Server, ln net.Listener, m interface{ Close() }, sig <-chan os.Signal, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- srv.Serve(ln)
		} else {
			errc <- srv.ListenAndServe()
		}
	}()
	select {
	case err := <-errc:
		m.Close()
		return err
	case s := <-sig:
		log.Printf("received %s, draining in-flight requests (grace %s)", s, grace)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		err := srv.Shutdown(ctx)
		// Close the tier only after the drain: in-flight polls and submits
		// must see a live manager, not ErrClosed 503s.
		m.Close()
		return err
	}
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	m, handler, err := buildServer(o)
	if err != nil {
		return err
	}

	srv := newHTTPServer(o, handler)
	log.Printf("mqpi-serve listening on %s (C=%g U/s, quantum=%gs, timescale=%g, workers=%d, shards=%d, routing=%s, admit-rate=%g, fold=%v, estimator=%s, demo=%v)",
		o.addr, o.rateC, o.quantum, o.timeScale, o.workers, o.shards, o.routing, o.admitRate, o.fold, o.estimator, o.demo)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return serveUntilSignal(srv, nil, m, sig, o.shutdownGrace)
}

func main() {
	if err := run(os.Args[1:]); err != nil && !errors.Is(err, flag.ErrHelp) {
		log.Fatal(err)
	}
}
