package main

import (
	"fmt"
	"os"

	"mqpi/internal/sim"
)

// runSim replays one simulator cell and prints its canonical trace. The trace
// contains no wall-clock values and no worker counts, so the same seed is
// byte-identical across runs and across -workers settings — diff two
// invocations to verify, or bisect a failing seed action by action.
func runSim(seed int64, workers, steps int) int {
	res, err := sim.Run(sim.Config{Seed: seed, Workers: workers, Steps: steps})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqpi-bench: sim: %v\n", err)
		return 1
	}
	fmt.Print(res.Trace)
	fmt.Fprintf(os.Stderr, "sim seed=%d workers=%d: %d actions, %d submitted, %d finished, %d failed, %d aborted, exactness checked=%d voided=%d\n",
		seed, workers, res.Actions, res.Submitted, res.Finished, res.Failed, res.Aborted, res.ExactChecked, res.ExactVoided)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "VIOLATION %s\n", v)
		}
		return 1
	}
	return 0
}
