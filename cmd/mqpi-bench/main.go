// Command mqpi-bench regenerates the paper's tables and figures as text.
//
//	mqpi-bench -exp all                 # every experiment
//	mqpi-bench -exp mcq -seed 7         # Figures 3-4
//	mqpi-bench -exp scq -runs 100       # Figures 6-7 at full paper scale
//	mqpi-bench -exp scq -parallel 8     # fan runs across 8 workers
//	mqpi-bench -exp all -json > figs.jsonl
//	mqpi-bench -sim -seed 17            # replay one simulator cell with its trace
//
// Experiments: dataset (Table 1), mcq (Fig 3-4), naq (Fig 5), scq (Fig 6-7),
// scq-lambda (Fig 8-9), scq-traj (Fig 10), maint (Fig 11).
//
// -parallel fans the independent runs of the sweep experiments across worker
// goroutines (0 = GOMAXPROCS); figures are bit-identical at every setting.
// -workers sets the scheduler's execute-phase worker pool inside each run
// (runners step concurrently behind the serial credit plane); figures are
// likewise bit-identical at every setting.
// -json writes each figure as one JSON object per line on stdout (headlines
// and timings move to stderr), ready for machine consumption.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mqpi/internal/core"
	"mqpi/internal/experiments"
	"mqpi/internal/metrics"
	"mqpi/internal/workload"
)

// expNames lists every runnable experiment, in battery order, plus the "all"
// selector; -exp values are validated against it before anything runs.
var expNames = []string{
	"dataset", "mcq", "naq", "scq", "scq-lambda", "scq-traj", "stages",
	"speedup", "priority", "mpl", "robust", "maint", "cluster", "folding",
	"calibration", "all",
}

// unknownExps returns the entries of a comma-split -exp value that name no
// experiment. A single bad name in a list like "mcq,bogus" must fail the
// whole invocation: silently running the valid prefix would report success
// for a sweep that never happened.
func unknownExps(which []string) []string {
	var bad []string
	for _, w := range which {
		found := false
		for _, name := range expNames {
			if w == name {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, w)
		}
	}
	return bad
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: "+strings.Join(expNames, "|"))
		seed     = flag.Int64("seed", 1, "random seed")
		runs     = flag.Int("runs", 0, "runs per data point (0 = experiment default)")
		rows     = flag.Int("lineitem", 0, "lineitem row count (0 = experiment default)")
		parallel = flag.Int("parallel", 0, "worker goroutines for independent runs (0 = GOMAXPROCS, 1 = sequential)")
		workers  = flag.Int("workers", 0, "execute-phase worker goroutines per scheduler tick (0/1 = inline serial; results identical at every setting)")
		jsonOut  = flag.Bool("json", false, "emit figures as JSON lines on stdout (headlines go to stderr)")
		verbose  = flag.Bool("v", false, "print timing for each experiment")
		csvDir   = flag.String("csv", "", "also write each figure as CSV into this directory")
		simMode  = flag.Bool("sim", false, "replay one randomized-workload simulation cell (uses -seed, -workers, -steps) and print its event trace")
		simSteps = flag.Int("steps", 0, "actions per simulation run in -sim mode (0 = default)")
	)
	flag.Parse()

	if *simMode {
		os.Exit(runSim(*seed, *workers, *simSteps))
	}

	which := strings.Split(*exp, ",")
	if bad := unknownExps(which); len(bad) > 0 {
		for _, w := range bad {
			fmt.Fprintf(os.Stderr, "mqpi-bench: unknown experiment %q\n", w)
		}
		fmt.Fprintf(os.Stderr, "mqpi-bench: valid experiments: %s\n", strings.Join(expNames, ", "))
		os.Exit(2)
	}
	want := func(name string) bool {
		for _, w := range which {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}
	data := workload.DataConfig{LineitemRows: *rows, Seed: *seed}
	// In JSON mode stdout carries only machine-readable lines; human-facing
	// headlines and diagrams move to stderr.
	txt := io.Writer(os.Stdout)
	if *jsonOut {
		txt = os.Stderr
	}
	saveCSV := func(name string, fig *metrics.Figure) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mqpi-bench: csv dir: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mqpi-bench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}
	// showFig renders a figure to the chosen sink (text table, or one JSON
	// line named after its CSV file) and writes the CSV copy if requested.
	showFig := func(name string, fig *metrics.Figure) error {
		saveCSV(name, fig)
		if *jsonOut {
			j, err := fig.JSON()
			if err != nil {
				return err
			}
			fmt.Printf("{\"name\":%q,\"figure\":%s}\n", name, j)
			return nil
		}
		fmt.Print(fig.Render())
		return nil
	}

	step := func(name string, f func() error) {
		if !want(name) {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "mqpi-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if *jsonOut {
			fmt.Printf("{\"name\":%q,\"seconds\":%.3f,\"parallel\":%d}\n", name, elapsed.Seconds(), *parallel)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, elapsed.Round(time.Millisecond))
		}
		fmt.Fprintln(txt)
	}

	step("dataset", func() error {
		res, err := experiments.RunDataset(experiments.DatasetConfig{Seed: *seed, Data: data})
		if err != nil {
			return err
		}
		fmt.Fprint(txt, res.Render())
		return nil
	})

	step("mcq", func() error {
		res, err := experiments.RunMCQ(experiments.MCQConfig{Seed: *seed, Data: data, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(txt, "MCQ focus query: %s (finishes at %.0fs; speed grows %.1fx)\n",
			res.FocusLabel, res.FinishTime, res.SpeedRatio)
		fmt.Fprintf(txt, "relative error at time 0: single-query %.0f%%, multi-query %.0f%%\n\n",
			res.ErrStartSingle*100, res.ErrStartMulti*100)
		if err := showFig("figure3", &res.Fig3); err != nil {
			return err
		}
		fmt.Fprintln(txt)
		return showFig("figure4", &res.Fig4)
	})

	step("naq", func() error {
		res, err := experiments.RunNAQ(experiments.NAQConfig{Seed: *seed, Data: data, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(txt, "NAQ events: Q2 finishes / Q3 starts at %.0fs, Q3 finishes at %.0fs, Q1 finishes at %.0fs\n",
			res.Q2Finish, res.Q3Finish, res.Q1Finish)
		fmt.Fprintf(txt, "relative error at time 0: single %.0f%%, multi(no queue) %.0f%%, multi(queue) %.0f%%\n\n",
			res.ErrStartSingle*100, res.ErrStartNoQueue*100, res.ErrStartQueue*100)
		return showFig("figure5", &res.Fig5)
	})

	step("scq", func() error {
		res, err := experiments.RunSCQ(experiments.SCQConfig{Seed: *seed, Runs: *runs, Data: data, Parallel: *parallel, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(txt, "SCQ: average future-query cost c̄=%.0fU, stability boundary λ*=C/c̄=%.3f\n\n",
			res.CBar, res.StabilityLambda)
		if err := showFig("figure6", &res.Fig6); err != nil {
			return err
		}
		fmt.Fprintln(txt)
		return showFig("figure7", &res.Fig7)
	})

	step("scq-lambda", func() error {
		res, err := experiments.RunSCQLambdaErr(experiments.SCQConfig{Seed: *seed, Runs: *runs, Data: data, Parallel: *parallel, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(txt, "SCQ λ′ sensitivity: true λ=%.3g, c̄=%.0fU\n\n", res.Lambda, res.CBar)
		if err := showFig("figure8", &res.Fig8); err != nil {
			return err
		}
		fmt.Fprintln(txt)
		return showFig("figure9", &res.Fig9)
	})

	step("scq-traj", func() error {
		res, err := experiments.RunSCQTrajectory(experiments.SCQConfig{Seed: *seed, Data: data, Workers: *workers}, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(txt, "SCQ trajectory: focus query finishes at %.0fs\n\n", res.FocusFinish)
		return showFig("figure10", &res.Fig10)
	})

	step("stages", func() error {
		// Figures 1 and 2 are analytic illustrations of the stage model;
		// render them from the closed form.
		states := []core.QueryState{
			{ID: 1, Remaining: 100, Weight: 1},
			{ID: 2, Remaining: 200, Weight: 1},
			{ID: 3, Remaining: 300, Weight: 1},
			{ID: 4, Remaining: 400, Weight: 1},
		}
		fmt.Fprintln(txt, "== Figure 1: sample execution of n=4 queries ==")
		fmt.Fprint(txt, core.StageDiagram(states, 100, 50))
		fmt.Fprintln(txt, "\n== Figure 2: same, with Q3 blocked at time 0 ==")
		blocked := append([]core.QueryState(nil), states...)
		blocked[2].Weight = 0
		fmt.Fprint(txt, core.StageDiagram(blocked, 100, 50))
		return nil
	})

	step("speedup", func() error {
		res, err := experiments.RunSpeedup(experiments.SpeedupConfig{Seed: *seed, Runs: *runs, Data: data, Parallel: *parallel, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintln(txt, "== Extension: §3.1 victim-selection policies ==")
		for i, p := range res.Policies {
			fmt.Fprintf(txt, "  %-28s mean target speed-up %6.1fs\n", p, res.MeanSavings[i])
		}
		fmt.Fprintf(txt, "  §3.1 benefit formula |predicted-actual| = %.1fs on average\n", res.PredictedVsActual)
		return nil
	})

	step("priority", func() error {
		res, err := experiments.RunPriority(experiments.PriorityConfig{Seed: *seed, Runs: *runs, Data: data, Parallel: *parallel, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(txt, "== Extension: weighted priorities (Assumption 3) ==\n")
		fmt.Fprintf(txt, "measured high/low speed ratio: %.2f (weights predict 3.00)\n", res.SpeedRatio)
		fmt.Fprintf(txt, "mean time-0 relative error: single %.0f%%, multi %.0f%%\n\n",
			res.ErrT0Single*100, res.ErrT0Multi*100)
		return showFig("priority", &res.Fig)
	})

	step("mpl", func() error {
		res, err := experiments.RunMPLSweep(experiments.MPLSweepConfig{Seed: *seed, Runs: *runs, Data: data, Parallel: *parallel, Workers: *workers})
		if err != nil {
			return err
		}
		return showFig("mpl-sweep", &res.Fig)
	})

	step("robust", func() error {
		res, err := experiments.RunRobustness(experiments.RobustnessConfig{Seed: *seed, Runs: *runs, Data: data, Parallel: *parallel, Workers: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintln(txt, "== Extension: Assumption 1 violated (rate varies with load) ==")
		fmt.Fprintf(txt, "mean time-0 relative error: single %.0f%%, multi %.0f%%\n",
			res.ErrSingle*100, res.ErrMulti*100)
		fmt.Fprintln(txt, "(the PI still assumes the constant nominal C; §4.1 predicts multi stays superior)")
		return showFig("robustness", &res.Fig)
	})

	step("maint", func() error {
		res, err := experiments.RunMaintenance(experiments.MaintenanceConfig{Seed: *seed, Runs: *runs, Data: data, Parallel: *parallel, Workers: *workers})
		if err != nil {
			return err
		}
		if err := showFig("figure11", &res.Fig11); err != nil {
			return err
		}
		fmt.Fprintf(txt, "\nsingle-PI method at t=tfinish: UW/TW=%.2f (paper: 0.67)\n", res.SingleAtTFinish)
		fmt.Fprintf(txt, "multi-PI improvement vs no-PI: %.3f, vs single-PI: %.3f, excess over limit: %.3f (t<tfinish averages)\n",
			res.MultiVsNoPI, res.MultiVsSingle, res.MultiVsLimit)
		return nil
	})

	step("cluster", func() error {
		res, err := experiments.RunClusterSweep(experiments.ClusterSweepConfig{
			Seed: *seed, Runs: *runs, Parallel: *parallel, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(txt, "== Serving tier: shard count x routing policy on a mixed Zipf workload ==")
		if err := showFig("cluster-throughput", &res.FigThroughput); err != nil {
			return err
		}
		fmt.Fprintln(txt)
		return showFig("cluster-eta", &res.FigETA)
	})

	step("folding", func() error {
		res, err := experiments.RunFoldingSweep(experiments.FoldingConfig{
			Seed: *seed, Runs: *runs, Parallel: *parallel, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(txt, "== Extension: shared-scan folding on a Zipf-skewed scan workload ==")
		fmt.Fprintln(txt, "(throughput and ETA series must coincide: folding only moves engine cost)")
		if err := showFig("folding-throughput", &res.FigThroughput); err != nil {
			return err
		}
		fmt.Fprintln(txt)
		if err := showFig("folding-eta", &res.FigETA); err != nil {
			return err
		}
		fmt.Fprintln(txt)
		return showFig("folding-saved", &res.FigSaved)
	})

	step("calibration", func() error {
		res, err := experiments.RunCalibration(experiments.CalibrationConfig{
			Seed: *seed, Data: data, Parallel: *parallel, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(txt, "== Estimator ensemble: uncertainty-band calibration ==")
		for _, sc := range res.Scenarios {
			fmt.Fprintf(txt, "  %-9s coverage %5.1f%%  (%d/%d intervals)\n",
				sc.Name, sc.Coverage*100, sc.Within, sc.Samples)
		}
		fmt.Fprintf(txt, "  pooled coverage %.1f%% (%d/%d; acceptance floor 80%%)\n\n",
			res.Coverage*100, res.Within, res.Samples)
		return showFig("calibration", &res.Fig)
	})
}
