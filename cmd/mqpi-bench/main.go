// Command mqpi-bench regenerates the paper's tables and figures as text.
//
//	mqpi-bench -exp all                 # every experiment
//	mqpi-bench -exp mcq -seed 7         # Figures 3-4
//	mqpi-bench -exp scq -runs 100       # Figures 6-7 at full paper scale
//
// Experiments: dataset (Table 1), mcq (Fig 3-4), naq (Fig 5), scq (Fig 6-7),
// scq-lambda (Fig 8-9), scq-traj (Fig 10), maint (Fig 11).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mqpi/internal/core"
	"mqpi/internal/experiments"
	"mqpi/internal/metrics"
	"mqpi/internal/workload"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: dataset|mcq|naq|scq|scq-lambda|scq-traj|maint|stages|speedup|priority|robust|mpl|all")
		seed    = flag.Int64("seed", 1, "random seed")
		runs    = flag.Int("runs", 0, "runs per data point (0 = experiment default)")
		rows    = flag.Int("lineitem", 0, "lineitem row count (0 = experiment default)")
		verbose = flag.Bool("v", false, "print timing for each experiment")
		csvDir  = flag.String("csv", "", "also write each figure as CSV into this directory")
	)
	flag.Parse()

	which := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, w := range which {
			if w == name || w == "all" {
				return true
			}
		}
		return false
	}
	data := workload.DataConfig{LineitemRows: *rows, Seed: *seed}
	saveCSV := func(name string, fig *metrics.Figure) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mqpi-bench: csv dir: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name+".csv")
		if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mqpi-bench: writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	ran := 0
	step := func(name string, f func() error) {
		if !want(name) {
			return
		}
		ran++
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "mqpi-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}

	step("dataset", func() error {
		res, err := experiments.RunDataset(experiments.DatasetConfig{Seed: *seed, Data: data})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})

	step("mcq", func() error {
		res, err := experiments.RunMCQ(experiments.MCQConfig{Seed: *seed, Data: data})
		if err != nil {
			return err
		}
		fmt.Printf("MCQ focus query: %s (finishes at %.0fs; speed grows %.1fx)\n",
			res.FocusLabel, res.FinishTime, res.SpeedRatio)
		fmt.Printf("relative error at time 0: single-query %.0f%%, multi-query %.0f%%\n\n",
			res.ErrStartSingle*100, res.ErrStartMulti*100)
		saveCSV("figure3", &res.Fig3)
		saveCSV("figure4", &res.Fig4)
		fmt.Print(res.Fig3.Render())
		fmt.Println()
		fmt.Print(res.Fig4.Render())
		return nil
	})

	step("naq", func() error {
		res, err := experiments.RunNAQ(experiments.NAQConfig{Seed: *seed, Data: data})
		if err != nil {
			return err
		}
		fmt.Printf("NAQ events: Q2 finishes / Q3 starts at %.0fs, Q3 finishes at %.0fs, Q1 finishes at %.0fs\n",
			res.Q2Finish, res.Q3Finish, res.Q1Finish)
		fmt.Printf("relative error at time 0: single %.0f%%, multi(no queue) %.0f%%, multi(queue) %.0f%%\n\n",
			res.ErrStartSingle*100, res.ErrStartNoQueue*100, res.ErrStartQueue*100)
		saveCSV("figure5", &res.Fig5)
		fmt.Print(res.Fig5.Render())
		return nil
	})

	step("scq", func() error {
		res, err := experiments.RunSCQ(experiments.SCQConfig{Seed: *seed, Runs: *runs, Data: data})
		if err != nil {
			return err
		}
		fmt.Printf("SCQ: average future-query cost c̄=%.0fU, stability boundary λ*=C/c̄=%.3f\n\n",
			res.CBar, res.StabilityLambda)
		saveCSV("figure6", &res.Fig6)
		saveCSV("figure7", &res.Fig7)
		fmt.Print(res.Fig6.Render())
		fmt.Println()
		fmt.Print(res.Fig7.Render())
		return nil
	})

	step("scq-lambda", func() error {
		res, err := experiments.RunSCQLambdaErr(experiments.SCQConfig{Seed: *seed, Runs: *runs, Data: data})
		if err != nil {
			return err
		}
		fmt.Printf("SCQ λ′ sensitivity: true λ=%.3g, c̄=%.0fU\n\n", res.Lambda, res.CBar)
		saveCSV("figure8", &res.Fig8)
		saveCSV("figure9", &res.Fig9)
		fmt.Print(res.Fig8.Render())
		fmt.Println()
		fmt.Print(res.Fig9.Render())
		return nil
	})

	step("scq-traj", func() error {
		res, err := experiments.RunSCQTrajectory(experiments.SCQConfig{Seed: *seed, Data: data}, nil)
		if err != nil {
			return err
		}
		fmt.Printf("SCQ trajectory: focus query finishes at %.0fs\n\n", res.FocusFinish)
		saveCSV("figure10", &res.Fig10)
		fmt.Print(res.Fig10.Render())
		return nil
	})

	step("stages", func() error {
		// Figures 1 and 2 are analytic illustrations of the stage model;
		// render them from the closed form.
		states := []core.QueryState{
			{ID: 1, Remaining: 100, Weight: 1},
			{ID: 2, Remaining: 200, Weight: 1},
			{ID: 3, Remaining: 300, Weight: 1},
			{ID: 4, Remaining: 400, Weight: 1},
		}
		fmt.Println("== Figure 1: sample execution of n=4 queries ==")
		fmt.Print(core.StageDiagram(states, 100, 50))
		fmt.Println("\n== Figure 2: same, with Q3 blocked at time 0 ==")
		blocked := append([]core.QueryState(nil), states...)
		blocked[2].Weight = 0
		fmt.Print(core.StageDiagram(blocked, 100, 50))
		return nil
	})

	step("speedup", func() error {
		res, err := experiments.RunSpeedup(experiments.SpeedupConfig{Seed: *seed, Runs: *runs, Data: data})
		if err != nil {
			return err
		}
		fmt.Println("== Extension: §3.1 victim-selection policies ==")
		for i, p := range res.Policies {
			fmt.Printf("  %-28s mean target speed-up %6.1fs\n", p, res.MeanSavings[i])
		}
		fmt.Printf("  §3.1 benefit formula |predicted-actual| = %.1fs on average\n", res.PredictedVsActual)
		return nil
	})

	step("priority", func() error {
		res, err := experiments.RunPriority(experiments.PriorityConfig{Seed: *seed, Data: data})
		if err != nil {
			return err
		}
		fmt.Printf("== Extension: weighted priorities (Assumption 3) ==\n")
		fmt.Printf("measured high/low speed ratio: %.2f (weights predict 3.00)\n", res.SpeedRatio)
		fmt.Printf("mean time-0 relative error: single %.0f%%, multi %.0f%%\n\n",
			res.ErrT0Single*100, res.ErrT0Multi*100)
		fmt.Print(res.Fig.Render())
		return nil
	})

	step("mpl", func() error {
		res, err := experiments.RunMPLSweep(experiments.MPLSweepConfig{Seed: *seed, Runs: *runs, Data: data})
		if err != nil {
			return err
		}
		saveCSV("mpl-sweep", &res.Fig)
		fmt.Print(res.Fig.Render())
		return nil
	})

	step("robust", func() error {
		res, err := experiments.RunRobustness(experiments.RobustnessConfig{Seed: *seed, Runs: *runs, Data: data})
		if err != nil {
			return err
		}
		fmt.Println("== Extension: Assumption 1 violated (rate varies with load) ==")
		fmt.Printf("mean time-0 relative error: single %.0f%%, multi %.0f%%\n",
			res.ErrSingle*100, res.ErrMulti*100)
		fmt.Println("(the PI still assumes the constant nominal C; §4.1 predicts multi stays superior)")
		return nil
	})

	step("maint", func() error {
		res, err := experiments.RunMaintenance(experiments.MaintenanceConfig{Seed: *seed, Runs: *runs, Data: data})
		if err != nil {
			return err
		}
		saveCSV("figure11", &res.Fig11)
		fmt.Print(res.Fig11.Render())
		fmt.Printf("\nsingle-PI method at t=tfinish: UW/TW=%.2f (paper: 0.67)\n", res.SingleAtTFinish)
		fmt.Printf("multi-PI improvement vs no-PI: %.3f, vs single-PI: %.3f, excess over limit: %.3f (t<tfinish averages)\n",
			res.MultiVsNoPI, res.MultiVsSingle, res.MultiVsLimit)
		return nil
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "mqpi-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
