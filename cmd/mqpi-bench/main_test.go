package main

import (
	"reflect"
	"testing"
)

// TestUnknownExps pins the -exp validation: a bad name anywhere in the comma
// list — not just a fully-unknown selector — must be reported, so a typo in
// "mcq,bogus" can never silently run half a battery and exit 0.
func TestUnknownExps(t *testing.T) {
	cases := []struct {
		which []string
		bad   []string
	}{
		{[]string{"all"}, nil},
		{[]string{"mcq", "calibration"}, nil},
		{[]string{"bogus"}, []string{"bogus"}},
		{[]string{"mcq", "bogus"}, []string{"bogus"}},
		{[]string{"bogus", "nope", "scq"}, []string{"bogus", "nope"}},
		{[]string{""}, []string{""}},
	}
	for _, c := range cases {
		if got := unknownExps(c.which); !reflect.DeepEqual(got, c.bad) {
			t.Errorf("unknownExps(%q) = %q, want %q", c.which, got, c.bad)
		}
	}
}

// TestExpNamesCoverSteps: every name is non-empty and unique, and "all" is
// present — the selector the default invocation depends on.
func TestExpNamesCoverSteps(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range expNames {
		if n == "" {
			t.Error("empty experiment name")
		}
		if seen[n] {
			t.Errorf("duplicate experiment name %q", n)
		}
		seen[n] = true
	}
	if !seen["all"] {
		t.Error("expNames is missing \"all\"")
	}
	if !seen["calibration"] {
		t.Error("expNames is missing \"calibration\"")
	}
}
