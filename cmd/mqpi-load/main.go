// Command mqpi-load is the YCSB-style load harness for the progress-indicator
// serving tier: a goroutine-per-client swarm that floods mqpi-serve with
// Zipf-skewed query templates under a configurable arrival process
// (closed-loop think time, open-loop Poisson, bursty, diurnal), then reports
// the latency SLO scorecard (submit/poll/end-to-end p50/p95/p99/p999) and
// ETA-accuracy-under-load curves.
//
// By default it stands up an in-process serving tier (single-engine, or the
// sharded cluster front door with -shards/-routing/-admit-rate) and drives it
// through the full HTTP mux without sockets; -url points the same swarm at a
// live mqpi-serve process instead.
//
//	mqpi-load -clients 1000 -arrival closed -duration 5s
//	mqpi-load -clients 1000 -shards 4 -routing least-loaded -admit-rate 500
//	mqpi-load -url http://localhost:8080 -arrival poisson -rate 800
//	mqpi-load -bench -out BENCH_load.json        # the committed baseline
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mqpi/internal/cluster"
	"mqpi/internal/core"
	"mqpi/internal/load"
)

type options struct {
	url       string
	clients   int
	ops       int
	duration  time.Duration
	poll      time.Duration
	arrival   string
	rate      float64
	think     time.Duration
	burstFac  float64
	burstOn   time.Duration
	burstOff  time.Duration
	period    time.Duration
	amp       float64
	zipfA     float64
	tables    int
	seed      int64
	server    load.ServerOpts
	sessions  bool
	jsonOut   bool
	out       string
	selfcheck bool
	bench     bool
	benchSecs time.Duration
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("mqpi-load", flag.ContinueOnError)
	fs.StringVar(&o.url, "url", "", "target base URL (empty = stand up an in-process server)")
	fs.IntVar(&o.clients, "clients", 64, "concurrent submit+poll client goroutines")
	fs.IntVar(&o.ops, "ops", 0, "schedule length (0 = horizon*rate arrivals for open loops, 4096 for closed)")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "wall-clock cap on the run (0 = drain the schedule)")
	fs.DurationVar(&o.poll, "poll", 5*time.Millisecond, "per-client pause between progress polls")
	fs.StringVar(&o.arrival, "arrival", string(load.ArrivalClosed), "arrival process: "+strings.Join(load.Arrivals(), "|"))
	fs.Float64Var(&o.rate, "rate", 500, "open-loop arrival rate, ops per wall second")
	fs.DurationVar(&o.think, "think", 20*time.Millisecond, "closed-loop mean think time")
	fs.Float64Var(&o.burstFac, "burst-factor", 8, "bursty: rate multiplier during bursts")
	fs.DurationVar(&o.burstOn, "burst-on", 250*time.Millisecond, "bursty: mean burst length")
	fs.DurationVar(&o.burstOff, "burst-off", 750*time.Millisecond, "bursty: mean gap length")
	fs.DurationVar(&o.period, "diurnal-period", 2*time.Second, "diurnal: cycle period")
	fs.Float64Var(&o.amp, "diurnal-amp", 0.8, "diurnal: modulation amplitude in (0,1]")
	fs.Float64Var(&o.zipfA, "zipf", 1.2, "Zipf exponent skewing template choice toward part_1")
	fs.IntVar(&o.tables, "tables", 3, "part tables the templates draw from (part_1..part_K)")
	fs.Int64Var(&o.seed, "seed", 1, "schedule seed (same seed = byte-identical schedule)")
	// In-process server shape (ignored with -url).
	fs.IntVar(&o.server.Rows, "rows", 15000, "in-process server: lineitem rows (>=15000 so the demo part tables fit the key range)")
	fs.Float64Var(&o.server.RateC, "engine-rate", 200, "in-process server: processing rate C, U per virtual second")
	fs.IntVar(&o.server.MPL, "mpl", 0, "in-process server: multi-programming limit (0 = unlimited)")
	fs.Float64Var(&o.server.Quantum, "quantum", 0.25, "in-process server: scheduler quantum, virtual seconds")
	fs.Float64Var(&o.server.TimeScale, "timescale", 400, "in-process server: virtual seconds per wall second")
	fs.DurationVar(&o.server.Tick, "tick", 2*time.Millisecond, "in-process server: wall interval between scheduler advances")
	fs.IntVar(&o.server.Workers, "workers", 0, "in-process server: execute-phase workers (0 = NumCPU)")
	fs.IntVar(&o.server.Shards, "shards", 1, "in-process server: engine shards behind the front door")
	fs.StringVar(&o.server.Routing, "routing", "round-robin", "in-process server: shard placement policy: "+strings.Join(cluster.RoutingPolicies(), "|"))
	fs.Float64Var(&o.server.AdmitRate, "admit-rate", 0, "in-process server: token-bucket admission rate, queries per virtual second")
	fs.Float64Var(&o.server.AdmitBurst, "admit-burst", 0, "in-process server: token-bucket burst capacity")
	fs.BoolVar(&o.server.AdmitQueue, "admit-queue", false, "in-process server: queue over-rate submissions instead of 429")
	fs.BoolVar(&o.server.Fold, "fold", false, "in-process server: fold same-table seq scans onto shared cursors")
	fs.StringVar(&o.server.Estimator, "estimator", core.EstimatorStage, "in-process server: estimate plane: "+strings.Join(core.EstimatorModes(), "|"))
	fs.BoolVar(&o.sessions, "sessions", false, "send per-client session affinity keys (requires a cluster target; the single-engine service rejects the field)")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the scorecard as JSON on stdout instead of the table")
	fs.StringVar(&o.out, "out", "", "also write the scorecard JSON to this file")
	fs.BoolVar(&o.selfcheck, "selfcheck", false, "exit non-zero unless the scorecard passes sanity checks (non-empty histograms, ordered percentiles, completions, no errors)")
	fs.BoolVar(&o.bench, "bench", false, "run the two pinned baseline configs (single-engine and 2-shard cluster; server flags ignored) and emit {\"runs\":[...]} — what BENCH_load.json commits")
	fs.DurationVar(&o.benchSecs, "bench-duration", 30*time.Second, "per-config wall cap in -bench mode")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if err := load.ValidArrival(o.arrival); err != nil {
		return o, err
	}
	if err := cluster.ValidRouting(o.server.Routing); err != nil {
		return o, err
	}
	if err := core.ValidEstimator(o.server.Estimator); err != nil {
		return o, err
	}
	if o.clients < 1 {
		return o, errors.New("clients must be at least 1")
	}
	if o.server.Shards < 1 {
		return o, errors.New("shards must be at least 1")
	}
	return o, nil
}

func (o options) genConfig() load.GenConfig {
	horizon := o.duration.Seconds()
	if horizon <= 0 {
		horizon = 5
	}
	return load.GenConfig{
		Arrival:     load.Arrival(o.arrival),
		Seed:        o.seed,
		Ops:         o.ops,
		Horizon:     horizon,
		Rate:        o.rate,
		Think:       o.think.Seconds(),
		BurstFactor: o.burstFac,
		BurstOn:     o.burstOn.Seconds(),
		BurstOff:    o.burstOff.Seconds(),
		Period:      o.period.Seconds(),
		Amp:         o.amp,
		Tables:      o.tables,
		ZipfA:       o.zipfA,
	}
}

// runOne executes one swarm against one target configuration.
func runOne(name string, gen load.GenConfig, swarm load.SwarmOpts, url string, server load.ServerOpts) (load.Scorecard, error) {
	sched, err := load.BuildSchedule(gen)
	if err != nil {
		return load.Scorecard{}, err
	}
	var target *load.Target
	var serverEcho *load.ServerOpts
	if url != "" {
		target = load.NewURLTarget(url, swarm.Clients)
	} else {
		srv, err := load.StartLocal(server)
		if err != nil {
			return load.Scorecard{}, err
		}
		defer srv.Close()
		target = load.NewHandlerTarget(srv.Handler)
		serverEcho = &server
	}
	rec, wall := load.Run(target, sched, swarm)
	return load.BuildScorecard(name, gen, swarm, serverEcho, rec, wall), nil
}

// benchRuns is the committed-baseline pair: the same closed-loop swarm at
// >=1000 clients against the single-engine service and against a 2-shard
// least-loaded cluster with queue-on-full admission, so routing and admission
// each get a latency distribution. The server shape is pinned here rather
// than taken from the generic flags, so regenerating BENCH_load.json always
// measures the same configuration: a high engine rate (20000 U/vs) keeps
// per-query virtual work small relative to the tick bookkeeping that
// dominates with ~1000 queries in the system, and MPL 64 lets queries
// complete in waves instead of all 1000 crawling to the finish together.
func benchRuns(o options) ([]load.Scorecard, error) {
	clients := o.clients
	if clients < 1000 {
		clients = 1000
	}
	gen := o.genConfig()
	gen.Arrival = load.ArrivalClosed
	gen.Ops = 2 * clients
	gen.Horizon = o.benchSecs.Seconds()
	swarm := load.SwarmOpts{Clients: clients, PollEvery: o.poll, Duration: o.benchSecs}

	base := load.ServerOpts{
		Rows:      15000,
		RateC:     20000,
		MPL:       64,
		Quantum:   0.25,
		TimeScale: 800,
		Tick:      time.Millisecond,
	}

	single := base
	sc1, err := runOne("single-engine", gen, swarm, "", single)
	if err != nil {
		return nil, err
	}

	clustered := base
	clustered.Shards = 2
	clustered.Routing = "least-loaded"
	clustered.AdmitRate = 400
	clustered.AdmitBurst = 800
	clustered.AdmitQueue = true
	swarm.Sessions = true
	sc2, err := runOne("cluster-2shard-least-loaded", gen, swarm, "", clustered)
	if err != nil {
		return nil, err
	}
	return []load.Scorecard{sc1, sc2}, nil
}

// report is the JSON envelope mqpi-load emits (and BENCH_load.json commits).
type report struct {
	// Note documents what the numbers are and are not: wall-clock latency on
	// whatever host ran the swarm, not a cross-machine benchmark.
	Note string           `json:"note"`
	Runs []load.Scorecard `json:"runs"`
}

const reportNote = "mqpi-load scorecard: wall-clock latency under a client swarm on the committing host; " +
	"compare shapes and ratios, not absolute times, across machines"

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}

	var runs []load.Scorecard
	if o.bench {
		runs, err = benchRuns(o)
	} else {
		var sc load.Scorecard
		name := "single-engine"
		if o.url != "" {
			name = o.url
		} else if o.server.Shards > 1 || o.server.AdmitRate > 0 {
			name = fmt.Sprintf("cluster-%dshard-%s", o.server.Shards, o.server.Routing)
		}
		swarm := load.SwarmOpts{
			Clients:   o.clients,
			PollEvery: o.poll,
			Duration:  o.duration,
			// Affinity keys go to cluster targets only: in-process when the
			// front door is up, external only when -sessions asserts it.
			Sessions: o.sessions || (o.url == "" && (o.server.Shards > 1 || o.server.AdmitRate > 0)),
		}
		sc, err = runOne(name, o.genConfig(), swarm, o.url, o.server)
		runs = []load.Scorecard{sc}
	}
	if err != nil {
		return err
	}

	rep := report{Note: reportNote, Runs: runs}
	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, sc := range runs {
			fmt.Print(sc.Text())
			fmt.Println()
		}
	}
	if o.out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	if o.selfcheck {
		for i := range runs {
			if err := runs[i].Check(); err != nil {
				return fmt.Errorf("selfcheck (%s): %w", runs[i].Name, err)
			}
		}
		fmt.Fprintln(os.Stderr, "selfcheck ok")
	}
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil && !errors.Is(err, flag.ErrHelp) {
		log.Fatal(err)
	}
}
