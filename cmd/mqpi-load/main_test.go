package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseFlagsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-arrival", "uniform"},
		{"-clients", "0"},
		{"-shards", "0"},
		{"-routing", "random"},
		{"-estimator", "oracle"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// TestLoadRunSelfcheck drives the real CLI end to end at smoke scale: an
// in-process single-engine server, a small closed-loop swarm, -selfcheck
// asserting non-empty ordered histograms, and the -out JSON artifact.
func TestLoadRunSelfcheck(t *testing.T) {
	out := filepath.Join(t.TempDir(), "score.json")
	err := run([]string{
		"-clients", "8", "-ops", "24", "-think", "1ms", "-poll", "1ms",
		"-duration", "30s", "-timescale", "800", "-tick", "1ms",
		"-selfcheck", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("bad -out JSON: %v", err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Latency.Submit.Count == 0 || rep.Runs[0].Ops.Completed == 0 {
		t.Fatalf("implausible scorecard: %s", b)
	}
	if rep.Note == "" {
		t.Fatal("report note missing")
	}
}

// TestLoadRunCluster exercises the front-door path through the CLI: shards,
// least-loaded routing, and generous queue-on-full admission must still pass
// the selfcheck.
func TestLoadRunCluster(t *testing.T) {
	err := run([]string{
		"-clients", "8", "-ops", "16", "-think", "1ms", "-poll", "1ms",
		"-duration", "30s", "-timescale", "800", "-tick", "1ms",
		"-shards", "2", "-routing", "least-loaded", "-admit-rate", "1e6", "-admit-burst", "1e6",
		"-selfcheck",
	})
	if err != nil {
		t.Fatal(err)
	}
}
