module mqpi

go 1.22
